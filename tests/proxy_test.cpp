// Proxy-layer tests: location service, digest authentication, routing
// table, and the ProxyServer pipeline driven by raw wire exchanges.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "proxy/auth.hpp"
#include "proxy/location.hpp"
#include "proxy/proxy.hpp"
#include "proxy/routing.hpp"
#include "workload/testbed.hpp"
#include "workload/uas.hpp"

namespace svk::proxy {
namespace {

using sip::CSeq;
using sip::Message;
using sip::MessagePtr;
using sip::Method;
using sip::NameAddr;
using sip::Uri;
using sip::Via;
using workload::TestBed;
using workload::UasConfig;

// ---------------------------------------------------------------------------
// LocationService
// ---------------------------------------------------------------------------

TEST(LocationServiceTest, RegisterLookupUnregister) {
  LocationService loc;
  loc.register_binding("user0@example.com", Uri("", "uas0.example.com"));
  const auto hit = loc.lookup("user0@example.com");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->contact.host(), "uas0.example.com");
  EXPECT_FALSE(loc.lookup("ghost@example.com").has_value());
  loc.unregister("user0@example.com");
  EXPECT_FALSE(loc.lookup("user0@example.com").has_value());
  EXPECT_EQ(loc.query_count(), 3u);
}

TEST(LocationServiceTest, ReRegisterReplacesBinding) {
  LocationService loc;
  loc.register_binding("u@d", Uri("", "old.host"));
  loc.register_binding("u@d", Uri("", "new.host"));
  EXPECT_EQ(loc.lookup("u@d")->contact.host(), "new.host");
  EXPECT_EQ(loc.size(), 1u);
}

// ---------------------------------------------------------------------------
// DigestAuthenticator
// ---------------------------------------------------------------------------

TEST(DigestTest, Rfc2617ExampleVector) {
  // RFC 2617 section 3.5 example credentials, computed with the original
  // RFC 2069 response formula (no qop): MD5(HA1:nonce:HA2). Verified
  // against an independent implementation.
  const std::string response = DigestAuthenticator::compute_response(
      "Mufasa", "testrealm@host.com", "Circle Of Life",
      "dcd98b7102dd2f0e8b11d0f600bfb0c093", "GET", "/dir/index.html");
  EXPECT_EQ(response, "670fd8c2df070c60b045671b8b24ff02");
}

TEST(DigestTest, ParseAuthorizationHeader) {
  const auto creds = parse_digest(
      "Digest username=\"hal\", realm=\"ibm\", nonce=\"n1\", "
      "uri=\"sip:u@h\", response=\"abc\"");
  ASSERT_TRUE(creds.has_value());
  EXPECT_EQ(creds->username, "hal");
  EXPECT_EQ(creds->realm, "ibm");
  EXPECT_EQ(creds->nonce, "n1");
  EXPECT_EQ(creds->uri, "sip:u@h");
  EXPECT_EQ(creds->response, "abc");
}

TEST(DigestTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_digest("Basic dXNlcjpwYXNz").has_value());
  EXPECT_FALSE(parse_digest("Digest username=\"x\"").has_value());
  EXPECT_FALSE(parse_digest("").has_value());
}

Message make_request_with_auth(const DigestAuthenticator& auth,
                               const std::string& user,
                               const std::string& password) {
  Message msg = Message::request(
      Method::kInvite, Uri("bob", "example.com"),
      NameAddr{"", Uri("alice", "client.com"), "t1"},
      NameAddr{"", Uri("bob", "example.com"), ""}, "c1",
      CSeq{1, Method::kInvite});
  msg.push_via(Via{"SIP/2.0/UDP", "client.com", "z9hG4bK-1"});
  msg.set_header(std::string(kProxyAuthorizationHeader),
                 DigestAuthenticator::make_authorization(
                     user, auth.realm(), password, auth.nonce(), "INVITE",
                     msg.request_uri().to_string()));
  return msg;
}

TEST(DigestTest, VerifyAcceptsValidCredentials) {
  DigestAuthenticator auth("realm1", "nonce1");
  auth.add_user("alice", "secret");
  EXPECT_TRUE(auth.verify(make_request_with_auth(auth, "alice", "secret")));
}

TEST(DigestTest, VerifyRejectsWrongPassword) {
  DigestAuthenticator auth("realm1", "nonce1");
  auth.add_user("alice", "secret");
  EXPECT_FALSE(auth.verify(make_request_with_auth(auth, "alice", "wrong")));
}

TEST(DigestTest, VerifyRejectsUnknownUserAndMissingHeader) {
  DigestAuthenticator auth("realm1", "nonce1");
  auth.add_user("alice", "secret");
  EXPECT_FALSE(auth.verify(make_request_with_auth(auth, "mallory", "x")));

  Message bare = Message::request(
      Method::kInvite, Uri("bob", "example.com"),
      NameAddr{"", Uri("alice", "client.com"), "t1"},
      NameAddr{"", Uri("bob", "example.com"), ""}, "c1",
      CSeq{1, Method::kInvite});
  bare.push_via(Via{"SIP/2.0/UDP", "client.com", "z9hG4bK-1"});
  EXPECT_FALSE(auth.verify(bare));
}

TEST(DigestTest, VerifyRejectsForeignNonce) {
  DigestAuthenticator auth("realm1", "nonce1");
  DigestAuthenticator other("realm1", "nonce2");
  auth.add_user("alice", "secret");
  EXPECT_FALSE(auth.verify(make_request_with_auth(other, "alice", "secret")));
}

TEST(DigestTest, ChallengeCarriesRealmAndNonce) {
  DigestAuthenticator auth("myrealm", "mynonce");
  const std::string challenge = auth.challenge();
  EXPECT_NE(challenge.find("realm=\"myrealm\""), std::string::npos);
  EXPECT_NE(challenge.find("nonce=\"mynonce\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// RouteTable
// ---------------------------------------------------------------------------

TEST(RouteTableTest, SuffixMatchOnLabelBoundary) {
  RouteTable routes;
  routes.add_route("gatech.edu", {Address{10}});
  EXPECT_TRUE(routes.route(Uri("u", "cc.gatech.edu")).has_value());
  EXPECT_TRUE(routes.route(Uri("u", "gatech.edu")).has_value());
  EXPECT_FALSE(routes.route(Uri("u", "notgatech.edu")).has_value());
  EXPECT_FALSE(routes.route(Uri("u", "gatech.edu.evil.com")).has_value());
}

TEST(RouteTableTest, LongestSuffixWins) {
  RouteTable routes;
  routes.add_route("gatech.edu", {Address{10}});
  routes.add_route("cc.gatech.edu", {Address{20}});
  const auto hit = routes.route(Uri("u", "x.cc.gatech.edu"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->next_hop, Address{20});
}

TEST(RouteTableTest, LocalDeliveryPathIsNotDelegable) {
  RouteTable routes;
  routes.add_local("example.com");
  const auto hit = routes.route(Uri("u", "example.com"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->local);
  EXPECT_FALSE(routes.paths()[hit->path_index].delegable);
}

TEST(RouteTableTest, RoundRobinSplitsEvenly) {
  RouteTable routes;
  routes.add_route("example.com", {Address{1}, Address{2}});
  int to_1 = 0, to_2 = 0;
  for (int i = 0; i < 100; ++i) {
    const auto hit = routes.route(Uri("u", "example.com"));
    ASSERT_TRUE(hit.has_value());
    (hit->next_hop == Address{1} ? to_1 : to_2)++;
  }
  EXPECT_EQ(to_1, 50);
  EXPECT_EQ(to_2, 50);
}

TEST(RouteTableTest, WeightedSplitViaDuplicateHops) {
  RouteTable routes;
  routes.add_route("example.com",
                   {Address{1}, Address{1}, Address{1}, Address{2}});
  int to_1 = 0;
  for (int i = 0; i < 100; ++i) {
    if (routes.route(Uri("u", "example.com"))->next_hop == Address{1}) {
      ++to_1;
    }
  }
  EXPECT_EQ(to_1, 75);
  // Duplicate hops share one path index.
  EXPECT_EQ(routes.paths().size(), 2u);
}

TEST(RouteTableTest, PathOfResolvesNeighbors) {
  RouteTable routes;
  routes.add_route("a.com", {Address{1}});
  routes.add_route("b.com", {Address{2}});
  routes.add_local("c.com");
  EXPECT_TRUE(routes.path_of(Address{1}).has_value());
  EXPECT_TRUE(routes.path_of(Address{2}).has_value());
  EXPECT_NE(routes.path_of(Address{1}), routes.path_of(Address{2}));
  EXPECT_FALSE(routes.path_of(Address{99}).has_value());
}

TEST(RouteTableTest, NoMatchReturnsNullopt) {
  RouteTable routes;
  routes.add_route("a.com", {Address{1}});
  EXPECT_FALSE(routes.route(Uri("u", "b.com")).has_value());
}

// ---------------------------------------------------------------------------
// ProxyServer pipeline (raw endpoint harness)
// ---------------------------------------------------------------------------

/// A scripted endpoint for poking the proxy with raw messages.
class RawHost {
 public:
  RawHost(TestBed& bed, const std::string& host)
      : bed_(bed), host_(host), addr_(bed.declare_host(host)) {
    bed_.network().attach(addr_,
                          [this](Address from, const MessagePtr& msg) {
                            inbox_.emplace_back(from, msg);
                          });
  }

  void send(Address to, const Message& msg) {
    bed_.network().send(addr_, to, clone(msg).finish());
  }

  [[nodiscard]] const std::string& host() const { return host_; }
  [[nodiscard]] Address address() const { return addr_; }
  [[nodiscard]] std::vector<std::pair<Address, MessagePtr>>& inbox() {
    return inbox_;
  }
  [[nodiscard]] int count_status(int code) const {
    int n = 0;
    for (const auto& [from, msg] : inbox_) {
      if (msg->is_response() && msg->status_code() == code) ++n;
    }
    return n;
  }
  [[nodiscard]] int count_method(Method method) const {
    int n = 0;
    for (const auto& [from, msg] : inbox_) {
      if (msg->is_request() && msg->method() == method) ++n;
    }
    return n;
  }

 private:
  TestBed& bed_;
  std::string host_;
  Address addr_;
  std::vector<std::pair<Address, MessagePtr>> inbox_;
};

struct ProxyFixtureOptions {
  profile::HandlingMode stateful_mode =
      profile::HandlingMode::kTransactionStateful;
  bool stateful_policy = true;
  bool authenticate = false;
  double capacity = profile::CpuCostModel::kCalibratedCapacity;
  SimTime max_queue_delay = SimTime::millis(200);
};

/// One proxy ("proxy0.test") delivering example.com locally to a scripted
/// UAS host, poked by a scripted client.
class ProxyPipelineTest : public ::testing::Test {
 protected:
  void build(const ProxyFixtureOptions& options) {
    bed = std::make_unique<TestBed>(7);
    client = std::make_unique<RawHost>(*bed, "client.test");
    uas_host = std::make_unique<RawHost>(*bed, "uas0.example.com");

    RouteTable routes;
    routes.add_local("example.com");
    ProxyConfig config;
    config.host = "proxy0.test";
    config.cpu_capacity = options.capacity;
    config.max_queue_delay = options.max_queue_delay;
    config.stateful_mode = options.stateful_mode;
    config.authenticate = options.authenticate;
    std::unique_ptr<StatePolicy> policy;
    if (options.stateful_policy) {
      policy = std::make_unique<AlwaysStateful>();
    } else {
      policy = std::make_unique<AlwaysStateless>();
    }
    proxy = &bed->add_proxy(std::move(config), std::move(routes),
                            std::move(policy));
    if (options.authenticate) {
      proxy->authenticator().add_user("alice", "secret");
    }
    bed->location()->register_binding("bob@example.com",
                                      Uri("", "uas0.example.com"));
  }

  Message make_invite(const std::string& call_id = "c1",
                      const std::string& branch = "z9hG4bK-t1") {
    Message msg = Message::request(
        Method::kInvite, Uri("bob", "example.com"),
        NameAddr{"", Uri("alice", "client.test"), "tag-a"},
        NameAddr{"", Uri("bob", "example.com"), ""}, call_id,
        CSeq{1, Method::kInvite});
    msg.push_via(Via{"SIP/2.0/UDP", "client.test", branch});
    return msg;
  }

  std::unique_ptr<TestBed> bed;
  std::unique_ptr<RawHost> client;
  std::unique_ptr<RawHost> uas_host;
  ProxyServer* proxy = nullptr;
};

TEST_F(ProxyPipelineTest, StatefulForwardGenerates100AndMarks) {
  build({});
  client->send(proxy->config().address, make_invite());
  bed->sim().run_until(SimTime::millis(100));

  EXPECT_EQ(client->count_status(100), 1);      // proxy-generated Trying
  ASSERT_EQ(uas_host->count_method(Method::kInvite), 1);
  const MessagePtr& fwd = uas_host->inbox().front().second;
  EXPECT_EQ(fwd->header(kStatefulMarkHeader), "proxy0.test");
  EXPECT_EQ(fwd->vias().size(), 2u);            // proxy pushed its Via
  EXPECT_EQ(fwd->top_via().sent_by, "proxy0.test");
  EXPECT_EQ(fwd->max_forwards(), 69);
  // Request-URI retargeted to the registered contact.
  EXPECT_EQ(fwd->request_uri().host(), "uas0.example.com");
  EXPECT_EQ(proxy->stats().forwarded_stateful, 1u);
}

TEST_F(ProxyPipelineTest, StatelessForwardNo100NoMark) {
  build({.stateful_policy = false});
  client->send(proxy->config().address, make_invite());
  bed->sim().run_until(SimTime::millis(100));

  EXPECT_EQ(client->count_status(100), 0);
  ASSERT_EQ(uas_host->count_method(Method::kInvite), 1);
  const MessagePtr& fwd = uas_host->inbox().front().second;
  EXPECT_FALSE(fwd->header(kStatefulMarkHeader).has_value());
  EXPECT_EQ(proxy->stats().forwarded_stateless, 1u);
}

TEST_F(ProxyPipelineTest, StatefulAbsorbsRetransmission) {
  build({});
  const Message invite = make_invite();
  client->send(proxy->config().address, invite);
  bed->sim().run_until(SimTime::millis(50));
  client->send(proxy->config().address, invite);  // same branch: retransmit
  bed->sim().run_until(SimTime::millis(100));

  EXPECT_EQ(uas_host->count_method(Method::kInvite), 1);  // absorbed
  EXPECT_EQ(proxy->stats().absorbed_retransmits, 1u);
  EXPECT_EQ(client->count_status(100), 2);  // 100 replayed to the client
}

TEST_F(ProxyPipelineTest, StatelessForwardsRetransmissionDownstream) {
  build({.stateful_policy = false});
  const Message invite = make_invite();
  client->send(proxy->config().address, invite);
  bed->sim().run_until(SimTime::millis(50));
  client->send(proxy->config().address, invite);
  bed->sim().run_until(SimTime::millis(100));

  EXPECT_EQ(uas_host->count_method(Method::kInvite), 2);
  // Deterministic stateless branch: both copies carry the same branch.
  EXPECT_EQ(uas_host->inbox()[0].second->top_via().branch,
            uas_host->inbox()[1].second->top_via().branch);
}

TEST_F(ProxyPipelineTest, ResponseRelayedUpstreamThroughServerTxn) {
  build({});
  client->send(proxy->config().address, make_invite());
  bed->sim().run_until(SimTime::millis(50));
  ASSERT_EQ(uas_host->count_method(Method::kInvite), 1);

  // UAS answers 180: the proxy pops its Via and relays to the client.
  const MessagePtr& fwd = uas_host->inbox().front().second;
  Message ringing = Message::response(*fwd, 180);
  ringing.to().tag = "tag-b";
  uas_host->send(proxy->config().address, ringing);
  bed->sim().run_until(SimTime::millis(100));

  EXPECT_EQ(client->count_status(180), 1);
  for (const auto& [from, msg] : client->inbox()) {
    if (msg->is_response() && msg->status_code() == 180) {
      EXPECT_EQ(msg->vias().size(), 1u);
      EXPECT_EQ(msg->top_via().sent_by, "client.test");
    }
  }
}

TEST_F(ProxyPipelineTest, UnknownUserGets404) {
  build({});
  Message invite = make_invite();
  invite.set_request_uri(Uri("ghost", "example.com"));
  invite.to().uri = invite.request_uri();
  client->send(proxy->config().address, invite);
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(client->count_status(404), 1);
  EXPECT_EQ(proxy->stats().route_failures, 1u);
}

TEST_F(ProxyPipelineTest, UnroutableDomainGets404) {
  build({});
  Message invite = make_invite();
  invite.set_request_uri(Uri("bob", "elsewhere.org"));
  client->send(proxy->config().address, invite);
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(client->count_status(404), 1);
}

TEST_F(ProxyPipelineTest, MaxForwardsZeroGets483) {
  build({});
  Message invite = make_invite();
  invite.set_max_forwards(0);
  client->send(proxy->config().address, invite);
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(client->count_status(483), 1);
  EXPECT_EQ(uas_host->count_method(Method::kInvite), 0);
  EXPECT_EQ(proxy->stats().rejected_483, 1u);
}

TEST_F(ProxyPipelineTest, MaxForwardsOneIsForwardedCarryingZero) {
  // RFC 3261 16.3 step 4: exhaustion means the request *arrived* with 0.
  // A request arriving with 1 must still be forwarded (carrying 0) — the
  // historical check-after-decrement rejected it one hop early.
  build({});
  Message invite = make_invite();
  invite.set_max_forwards(1);
  client->send(proxy->config().address, invite);
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(client->count_status(483), 0);
  ASSERT_EQ(uas_host->count_method(Method::kInvite), 1);
  EXPECT_EQ(uas_host->inbox().front().second->max_forwards(), 0);
  EXPECT_EQ(proxy->stats().rejected_483, 0u);
}

TEST_F(ProxyPipelineTest, CancelWithExhaustedMaxForwardsGets483NotDropped) {
  // A CANCEL that arrives hop-count-exhausted (and matches no local INVITE
  // leg) must be answered 483 so the canceller's client transaction
  // completes; the old path silently dropped it and the canceller timed
  // out after 64*T1.
  build({.stateful_policy = false});
  Message cancel = Message::request(
      Method::kCancel, Uri("bob", "example.com"),
      NameAddr{"", Uri("alice", "client.test"), "tag-a"},
      NameAddr{"", Uri("bob", "example.com"), ""}, "c-cancel",
      CSeq{1, Method::kCancel});
  cancel.push_via(Via{"SIP/2.0/UDP", "client.test", "z9hG4bK-c1"});
  cancel.set_max_forwards(0);
  client->send(proxy->config().address, cancel);
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(client->count_status(483), 1);
  EXPECT_EQ(uas_host->count_method(Method::kCancel), 0);
  EXPECT_EQ(proxy->stats().rejected_483, 1u);
}

TEST_F(ProxyPipelineTest, AuthMissingCredentialsGets407) {
  build({.authenticate = true});
  client->send(proxy->config().address, make_invite());
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(client->count_status(407), 1);
  EXPECT_EQ(proxy->stats().auth_failures, 1u);
}

TEST_F(ProxyPipelineTest, AuthBadCredentialsGets403) {
  build({.authenticate = true});
  Message invite = make_invite();
  invite.set_header(std::string(kProxyAuthorizationHeader),
                    DigestAuthenticator::make_authorization(
                        "alice", "proxy0.test", "wrongpass",
                        "nonce-proxy0.test", "INVITE",
                        invite.request_uri().to_string()));
  client->send(proxy->config().address, invite);
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(client->count_status(403), 1);
}

TEST_F(ProxyPipelineTest, AuthGoodCredentialsForwarded) {
  build({.authenticate = true});
  Message invite = make_invite();
  invite.set_header(std::string(kProxyAuthorizationHeader),
                    DigestAuthenticator::make_authorization(
                        "alice", "proxy0.test", "secret",
                        "nonce-proxy0.test", "INVITE",
                        invite.request_uri().to_string()));
  client->send(proxy->config().address, invite);
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(uas_host->count_method(Method::kInvite), 1);
  EXPECT_EQ(proxy->stats().auth_failures, 0u);
}

TEST_F(ProxyPipelineTest, SaturatedProxySends500) {
  // A proxy with ~1000 events/s capacity takes seconds per message; the
  // queue-delay bound trips immediately after the first few admissions.
  build({.capacity = 1000.0, .max_queue_delay = SimTime::millis(200)});
  for (int i = 0; i < 10; ++i) {
    client->send(proxy->config().address,
                 make_invite("c" + std::to_string(i),
                             "z9hG4bK-t" + std::to_string(i)));
  }
  bed->sim().run_until(SimTime::seconds(2.0));
  EXPECT_GT(client->count_status(500), 0);
  EXPECT_GT(proxy->stats().rejected_busy, 0u);
}

TEST_F(ProxyPipelineTest, DialogStatefulInsertsRecordRouteAndTracksDialogs) {
  build({.stateful_mode = profile::HandlingMode::kDialogStateful});
  client->send(proxy->config().address, make_invite());
  bed->sim().run_until(SimTime::millis(50));
  ASSERT_EQ(uas_host->count_method(Method::kInvite), 1);
  const MessagePtr& fwd = uas_host->inbox().front().second;
  ASSERT_EQ(fwd->record_routes().size(), 1u);
  EXPECT_EQ(fwd->record_routes()[0].host(), "proxy0.test");
  EXPECT_EQ(proxy->dialogs().active_count(), 1u);

  // 200 confirms the dialog.
  Message ok = Message::response(*fwd, 200);
  ok.to().tag = "tag-b";
  ok.set_contact(NameAddr{"", Uri("", "uas0.example.com"), ""});
  uas_host->send(proxy->config().address, ok);
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(proxy->dialogs().active_count(), 1u);
  EXPECT_EQ(client->count_status(200), 1);
}

TEST_F(ProxyPipelineTest, ControlMessageNotForwarded) {
  build({});
  Message options = Message::request(
      Method::kOptions, Uri("overload", "proxy0.test"),
      NameAddr{"", Uri("control", "x.test"), "t"},
      NameAddr{"", Uri("control", "proxy0.test"), ""}, "ovl-1",
      CSeq{1, Method::kOptions});
  options.push_via(Via{"SIP/2.0/UDP", "client.test", "z9hG4bK-ovl"});
  options.set_header(std::string(kOverloadHeader), "on;rate=100.0");
  client->send(proxy->config().address, options);
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(proxy->stats().overload_signals_received, 1u);
  EXPECT_EQ(uas_host->count_method(Method::kOptions), 0);
}

TEST_F(ProxyPipelineTest, AckForwardedEndToEndWithoutTransaction) {
  build({});
  client->send(proxy->config().address, make_invite());
  bed->sim().run_until(SimTime::millis(50));

  Message ack = Message::request(
      Method::kAck, Uri("bob", "uas0.example.com"),
      NameAddr{"", Uri("alice", "client.test"), "tag-a"},
      NameAddr{"", Uri("bob", "example.com"), "tag-b"}, "c1",
      CSeq{1, Method::kAck});
  ack.push_via(Via{"SIP/2.0/UDP", "client.test", "z9hG4bK-ack"});
  client->send(proxy->config().address, ack);
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(uas_host->count_method(Method::kAck), 1);
}

TEST_F(ProxyPipelineTest, RouteHeaderPreferredOverRequestUri) {
  build({});
  // Request whose Route set names our proxy then the UAS host; the
  // request-URI points at an unroutable domain and must be ignored for
  // next-hop selection.
  Message bye = Message::request(
      Method::kBye, Uri("bob", "unroutable.org"),
      NameAddr{"", Uri("alice", "client.test"), "tag-a"},
      NameAddr{"", Uri("bob", "example.com"), "tag-b"}, "c1",
      CSeq{2, Method::kBye});
  bye.push_via(Via{"SIP/2.0/UDP", "client.test", "z9hG4bK-bye"});
  bye.routes().push_back(Uri("", "proxy0.test"));
  bye.routes().push_back(Uri("", "uas0.example.com"));
  client->send(proxy->config().address, bye);
  bed->sim().run_until(SimTime::millis(100));
  ASSERT_EQ(uas_host->count_method(Method::kBye), 1);
  // Our own Route entry was stripped; the next one remains.
  ASSERT_EQ(uas_host->inbox().front().second->routes().size(), 1u);
  EXPECT_EQ(uas_host->inbox().front().second->routes()[0].host(),
            "uas0.example.com");
}

}  // namespace
}  // namespace svk::proxy
