// Tests for the registrar role (REGISTER, binding lifetimes, refresh) and
// call cancellation (CANCEL through stateful and stateless proxies).
#include <gtest/gtest.h>

#include <memory>

#include "proxy/proxy.hpp"
#include "workload/testbed.hpp"
#include "workload/uac.hpp"
#include "workload/uas.hpp"

namespace svk::workload {
namespace {

using proxy::ProxyConfig;
using proxy::RouteTable;

/// One proxy serving example.com locally; a UAS and a UAC. Registration is
/// NOT pre-provisioned — tests drive it via real REGISTERs.
class RegistrarFixture : public ::testing::Test {
 protected:
  void build(bool stateful = true, SimTime answer_delay = SimTime{}) {
    bed = std::make_unique<TestBed>(5);
    proxy_addr = bed->declare_host("proxy0.test");
    RouteTable routes;
    routes.add_local("example.com");
    ProxyConfig config;
    config.host = "proxy0.test";
    std::unique_ptr<proxy::StatePolicy> policy;
    if (stateful) {
      policy = std::make_unique<proxy::AlwaysStateful>();
    } else {
      policy = std::make_unique<proxy::AlwaysStateless>();
    }
    proxy = &bed->add_proxy(std::move(config), std::move(routes),
                            std::move(policy));
    UasConfig uas_config;
    uas_config.host = "uas0.example.com";
    uas_config.answer_delay = answer_delay;
    uas = &bed->add_uas(uas_config);
  }

  Uac& add_caller(double rate, double cancel_probability = 0.0,
                  SimTime abandon_after = SimTime::seconds(2.0)) {
    UacConfig config;
    config.host = "uac0.client.test";
    config.first_hop = proxy_addr;
    config.target_domain = "example.com";
    config.num_callees = 1;  // user0@example.com
    config.call_rate_cps = rate;
    config.cancel_probability = cancel_probability;
    config.ring_abandon_after = abandon_after;
    return bed->add_uac(std::move(config));
  }

  std::unique_ptr<TestBed> bed;
  Address proxy_addr;
  proxy::ProxyServer* proxy = nullptr;
  Uas* uas = nullptr;
};

// ---------------------------------------------------------------------------
// REGISTER
// ---------------------------------------------------------------------------

TEST_F(RegistrarFixture, RegisterCreatesBindingAndCallsSucceed) {
  build();
  uas->register_with(proxy_addr, "user0@example.com",
                     SimTime::seconds(3600.0));
  bed->sim().run_until(SimTime::seconds(0.5));
  EXPECT_EQ(uas->registrations_confirmed(), 1u);
  EXPECT_EQ(proxy->stats().registrations, 1u);
  ASSERT_TRUE(bed->location()->lookup("user0@example.com").has_value());

  Uac& uac = add_caller(10.0);
  uac.start();
  bed->sim().run_until(SimTime::seconds(3.0));
  EXPECT_GT(uac.metrics().calls_completed, 20u);
  EXPECT_EQ(uac.metrics().calls_failed, 0u);
}

TEST_F(RegistrarFixture, UnregisteredUserGets404) {
  build();
  Uac& uac = add_caller(10.0);
  uac.start();
  bed->sim().run_until(SimTime::seconds(2.0));
  EXPECT_EQ(uac.metrics().calls_completed, 0u);
  EXPECT_GT(uac.metrics().calls_failed, 10u);
  EXPECT_GT(proxy->stats().route_failures, 10u);
}

TEST_F(RegistrarFixture, BindingExpires) {
  build();
  uas->register_with(proxy_addr, "user0@example.com",
                     SimTime::seconds(2.0));
  bed->sim().run_until(SimTime::seconds(0.5));
  ASSERT_TRUE(bed->location()
                  ->lookup("user0@example.com", bed->sim().now())
                  .has_value());

  Uac& uac = add_caller(10.0);
  uac.start();
  bed->sim().run_until(SimTime::seconds(10.0));
  // Calls before t=2.5 succeed; later ones 404.
  EXPECT_GT(uac.metrics().calls_completed, 5u);
  EXPECT_GT(uac.metrics().calls_failed, 10u);
  EXPECT_FALSE(bed->location()
                   ->lookup("user0@example.com", bed->sim().now())
                   .has_value());
}

TEST_F(RegistrarFixture, AutoRefreshKeepsBindingAlive) {
  build();
  uas->register_with(proxy_addr, "user0@example.com",
                     SimTime::seconds(2.0), /*auto_refresh=*/true);
  Uac& uac = add_caller(10.0);
  uac.start();
  bed->sim().run_until(SimTime::seconds(10.0));
  EXPECT_GT(uas->registrations_confirmed(), 3u);  // refreshed repeatedly
  EXPECT_GT(uac.metrics().calls_completed, 80u);
  EXPECT_EQ(uac.metrics().calls_failed, 0u);
}

TEST_F(RegistrarFixture, ZeroExpiresUnregisters) {
  build();
  uas->register_with(proxy_addr, "user0@example.com",
                     SimTime::seconds(3600.0));
  bed->sim().run_until(SimTime::seconds(0.5));
  ASSERT_TRUE(bed->location()->lookup("user0@example.com").has_value());
  uas->register_with(proxy_addr, "user0@example.com", SimTime{});
  bed->sim().run_until(SimTime::seconds(1.0));
  EXPECT_FALSE(bed->location()
                   ->lookup("user0@example.com", bed->sim().now())
                   .has_value());
}

TEST_F(RegistrarFixture, RegisterForRemoteDomainIsForwarded) {
  // Two proxies: p0 routes example.com to p1 (the registrar).
  bed = std::make_unique<TestBed>(6);
  const Address p0_addr = bed->declare_host("p0.test");
  const Address p1_addr = bed->declare_host("p1.test");
  RouteTable routes0;
  routes0.add_route("example.com", {p1_addr});
  ProxyConfig config0;
  config0.host = "p0.test";
  bed->add_proxy(std::move(config0), std::move(routes0),
                 std::make_unique<proxy::AlwaysStateless>());
  RouteTable routes1;
  routes1.add_local("example.com");
  ProxyConfig config1;
  config1.host = "p1.test";
  auto& p1 = bed->add_proxy(std::move(config1), std::move(routes1),
                            std::make_unique<proxy::AlwaysStateful>());
  UasConfig uas_config;
  uas_config.host = "uas0.example.com";
  Uas& remote_uas = bed->add_uas(uas_config);

  remote_uas.register_with(p0_addr, "user0@example.com",
                           SimTime::seconds(3600.0));
  bed->sim().run_until(SimTime::seconds(1.0));
  EXPECT_EQ(remote_uas.registrations_confirmed(), 1u);
  EXPECT_EQ(p1.stats().registrations, 1u);
  EXPECT_TRUE(bed->location()->lookup("user0@example.com").has_value());
}

TEST_F(RegistrarFixture, ReRegistrationReplacesContact) {
  build();
  uas->register_with(proxy_addr, "user0@example.com",
                     SimTime::seconds(3600.0));
  // A second device registers the same AOR.
  UasConfig other_config;
  other_config.host = "uas1.example.com";
  Uas& other = bed->add_uas(other_config);
  bed->sim().run_until(SimTime::seconds(0.5));
  other.register_with(proxy_addr, "user0@example.com",
                      SimTime::seconds(3600.0));
  bed->sim().run_until(SimTime::seconds(1.0));
  const auto binding = bed->location()->lookup("user0@example.com");
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->contact.host(), "uas1.example.com");
}

// ---------------------------------------------------------------------------
// CANCEL
// ---------------------------------------------------------------------------

TEST_F(RegistrarFixture, CancelThroughStatefulProxy) {
  build(/*stateful=*/true, /*answer_delay=*/SimTime::seconds(5.0));
  bed->location()->register_binding("user0@example.com",
                                    sip::Uri("", "uas0.example.com"));
  Uac& uac = add_caller(10.0, /*cancel_probability=*/1.0,
                        /*abandon_after=*/SimTime::millis(500));
  uac.start();
  bed->sim().run_until(SimTime::seconds(5.0));

  EXPECT_GT(uac.metrics().calls_cancelled, 30u);
  EXPECT_EQ(uac.metrics().calls_established, 0u);
  EXPECT_EQ(uac.metrics().calls_failed, 0u);
  EXPECT_EQ(uas->metrics().cancels_received,
            uac.metrics().calls_cancelled);
  EXPECT_EQ(uas->metrics().calls_established, 0u);
  // Open calls drain: the 487s terminated every INVITE transaction.
  bed->stop_load();
  bed->sim().run_until(SimTime::seconds(10.0));
  EXPECT_EQ(uac.open_calls(), 0u);
}

TEST_F(RegistrarFixture, CancelThroughStatelessProxy) {
  build(/*stateful=*/false, /*answer_delay=*/SimTime::seconds(5.0));
  bed->location()->register_binding("user0@example.com",
                                    sip::Uri("", "uas0.example.com"));
  Uac& uac = add_caller(10.0, 1.0, SimTime::millis(500));
  uac.start();
  bed->sim().run_until(SimTime::seconds(5.0));

  // The deterministic stateless branch lets the CANCEL match the INVITE
  // at the UAS even though the proxy kept no state.
  EXPECT_GT(uac.metrics().calls_cancelled, 30u);
  EXPECT_EQ(uas->metrics().cancels_received,
            uac.metrics().calls_cancelled);
  EXPECT_EQ(uac.metrics().calls_failed, 0u);
}

TEST_F(RegistrarFixture, CancelLosesRaceWhenAnswerIsImmediate) {
  build(/*stateful=*/true, /*answer_delay=*/SimTime{});
  bed->location()->register_binding("user0@example.com",
                                    sip::Uri("", "uas0.example.com"));
  // Abandon "after 500ms" — but calls answer in ~2ms, so CANCEL never
  // fires (send_cancel sees the call established).
  Uac& uac = add_caller(10.0, 1.0, SimTime::millis(500));
  uac.start();
  bed->sim().run_until(SimTime::seconds(5.0));
  EXPECT_EQ(uac.metrics().calls_cancelled, 0u);
  EXPECT_GT(uac.metrics().calls_completed, 30u);
  EXPECT_EQ(uas->metrics().cancels_received, 0u);
}

TEST_F(RegistrarFixture, MixedCancelAndCompleteTraffic) {
  build(/*stateful=*/true, /*answer_delay=*/SimTime::millis(800));
  bed->location()->register_binding("user0@example.com",
                                    sip::Uri("", "uas0.example.com"));
  // Half the calls abandon before the 800ms answer.
  Uac& uac = add_caller(20.0, 0.5, SimTime::millis(400));
  uac.start();
  bed->sim().run_until(SimTime::seconds(10.0));
  bed->stop_load();
  bed->sim().run_until(SimTime::seconds(15.0));

  EXPECT_GT(uac.metrics().calls_cancelled, 50u);
  EXPECT_GT(uac.metrics().calls_completed, 50u);
  EXPECT_EQ(uac.metrics().calls_failed, 0u);
  EXPECT_EQ(uac.metrics().calls_attempted,
            uac.metrics().calls_completed + uac.metrics().calls_cancelled);
  EXPECT_EQ(uac.open_calls(), 0u);
}

TEST_F(RegistrarFixture, RingingCallsHoldTransactionStateAtProxy) {
  build(/*stateful=*/true, /*answer_delay=*/SimTime::seconds(3.0));
  bed->location()->register_binding("user0@example.com",
                                    sip::Uri("", "uas0.example.com"));
  Uac& uac = add_caller(10.0);
  uac.start();
  bed->sim().run_until(SimTime::seconds(2.0));
  // ~20 calls ringing: proxy holds a server+client transaction pair each.
  EXPECT_GT(proxy->transactions().active_count(), 20u);
  bed->sim().run_until(SimTime::seconds(20.0));
  EXPECT_GT(uac.metrics().calls_completed, 100u);
}

}  // namespace
}  // namespace svk::workload
