// Unit tests for the discrete-event simulator: event ordering, timers,
// network links, CPU queue semantics and utilization accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/cpu_queue.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace svk::sim {
namespace {

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::millis(30), [&] { order.push_back(3); });
  sim.schedule(SimTime::millis(10), [&] { order.push_back(1); });
  sim.schedule(SimTime::millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(30));
}

TEST(SimulatorTest, SimultaneousEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(SimTime::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  bool ran = false;
  sim.schedule(SimTime::millis(-5), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), SimTime{});
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule(SimTime::millis(1), [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelUnknownIdIsNoop) {
  Simulator sim;
  sim.cancel(0);
  sim.cancel(99999);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule(SimTime::seconds(i), [&] { ++count; });
  }
  sim.run_until(SimTime::seconds(3.5));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), SimTime::seconds(3.5));
  sim.run_until(SimTime::seconds(10.0));
  EXPECT_EQ(count, 5);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::millis(1), [&] {
    order.push_back(1);
    sim.schedule(SimTime::millis(1), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, ZeroDelayFromWithinEventRunsAtSameTime) {
  Simulator sim;
  SimTime inner_time;
  sim.schedule(SimTime::millis(7), [&] {
    sim.schedule(SimTime{}, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, SimTime::millis(7));
}

TEST(SimulatorTest, ExecutedCountCountsEvents) {
  Simulator sim;
  for (int i = 0; i < 4; ++i) sim.schedule(SimTime::millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed_count(), 4u);
}

TEST(SimulatorTest, PendingCountTracksScheduleCancelExecute) {
  Simulator sim;
  const EventId a = sim.schedule(SimTime::millis(1), [] {});
  sim.schedule(SimTime::millis(2), [] {});
  sim.schedule(SimTime::millis(3), [] {});
  EXPECT_EQ(sim.pending_count(), 3u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

// Regression: cancelling an id whose event has already run used to insert a
// tombstone that no queue pop ever reclaimed — pending_count() (then
// computed as queue size minus tombstone count) underflowed to ~2^64 and
// the tombstone set grew without bound.
TEST(SimulatorTest, CancelAfterExecutionKeepsPendingCountSane) {
  Simulator sim;
  const EventId id = sim.schedule(SimTime::millis(1), [] {});
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
  sim.cancel(id);  // stale: the event already ran
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_LT(sim.pending_count(), 1000u);  // explicit underflow guard

  // The loop keeps working and later events are unaffected.
  bool ran = false;
  sim.schedule(SimTime::millis(1), [&] { ran = true; });
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimulatorTest, RepeatedStaleCancelsDoNotAccumulate) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule(SimTime::millis(i), [] {}));
  }
  sim.run();
  for (const EventId id : ids) sim.cancel(id);
  for (const EventId id : ids) sim.cancel(id);  // and again, for good measure
  EXPECT_EQ(sim.pending_count(), 0u);
  sim.schedule(SimTime::millis(200), [] {});
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(SimulatorTest, DoubleCancelCountsOnce) {
  Simulator sim;
  const EventId a = sim.schedule(SimTime::millis(1), [] {});
  sim.schedule(SimTime::millis(2), [] {});
  sim.cancel(a);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(sim.executed_count(), 1u);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimulatorTest, SelfCancelFromInsideActionIsNoop) {
  Simulator sim;
  EventId self = 0;
  self = sim.schedule(SimTime::millis(1), [&] { sim.cancel(self); });
  sim.run();
  EXPECT_EQ(sim.executed_count(), 1u);
  EXPECT_EQ(sim.pending_count(), 0u);
}

// Regression: run_until used to duplicate step()'s cancellation filtering
// (peek, erase tombstone, pop — then step() re-popped and re-checked);
// cancelling the queue top from a same-instant event exercised both paths.
// Filtering now happens in exactly one place, so the accounting stays
// consistent.
TEST(SimulatorTest, CancelOfQueueTopDuringRunUntilStaysConsistent) {
  Simulator sim;
  EventId b = 0;
  int runs = 0;
  sim.schedule(SimTime::millis(1), [&] {
    ++runs;
    sim.cancel(b);  // b is the next queue top at the same instant
  });
  b = sim.schedule(SimTime::millis(1), [&] { ++runs; });
  sim.schedule(SimTime::millis(2), [&] { ++runs; });
  EXPECT_EQ(sim.pending_count(), 3u);
  sim.run_until(SimTime::millis(5));
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(sim.executed_count(), 2u);
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.now(), SimTime::millis(5));
}

// ---------------------------------------------------------------------------
// PeriodicTimer
// ---------------------------------------------------------------------------

TEST(PeriodicTimerTest, TicksAtPeriod) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, SimTime::seconds(1.0), [&] { ++ticks; });
  timer.start();
  sim.run_until(SimTime::seconds(5.5));
  EXPECT_EQ(ticks, 5);
}

TEST(PeriodicTimerTest, StopHalts) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, SimTime::seconds(1.0), [&] { ++ticks; });
  timer.start();
  sim.schedule(SimTime::seconds(2.5), [&] { timer.stop(); });
  sim.run_until(SimTime::seconds(10.0));
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimerTest, DestructionCancels) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTimer timer(sim, SimTime::seconds(1.0), [&] { ++ticks; });
    timer.start();
    sim.run_until(SimTime::seconds(1.5));
  }
  sim.run_until(SimTime::seconds(10.0));
  EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTimerTest, StartIsIdempotent) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, SimTime::seconds(1.0), [&] { ++ticks; });
  timer.start();
  timer.start();
  sim.run_until(SimTime::seconds(3.5));
  EXPECT_EQ(ticks, 3);
}

// Regression reproducer for the stale-cancel bug: stop() from inside the
// timer's own on_tick cancels the id of the event that is currently
// executing (it was popped but not yet re-armed). That cancel must be a
// no-op, not a permanent tombstone that corrupts pending accounting.
TEST(PeriodicTimerTest, StopInsideOwnTickKeepsSimulatorConsistent) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer* self = nullptr;
  PeriodicTimer timer(sim, SimTime::seconds(1.0), [&] {
    ++ticks;
    self->stop();
  });
  self = &timer;
  timer.start();
  sim.run_until(SimTime::seconds(10.0));
  EXPECT_EQ(ticks, 1);
  EXPECT_FALSE(timer.running());
  EXPECT_EQ(sim.pending_count(), 0u);  // pre-fix: underflowed to ~2^64

  // The timer is reusable after the in-tick stop (and stops itself again).
  timer.start();
  sim.run_until(SimTime::seconds(12.5));
  EXPECT_EQ(ticks, 2);  // re-armed at t=10 -> one tick at t=11, stops again
  EXPECT_FALSE(timer.running());
  EXPECT_EQ(sim.pending_count(), 0u);
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

using TestNetwork = Network<std::string>;

TEST(NetworkTest, DeliversAfterLatency) {
  Simulator sim;
  TestNetwork net(sim, Rng(1));
  net.set_default_link(LinkParams{SimTime::millis(5), SimTime{}, 0.0});

  std::string received;
  SimTime received_at;
  net.attach(Address{2}, [&](Address from, std::string payload) {
    EXPECT_EQ(from, Address{1});
    received = std::move(payload);
    received_at = sim.now();
  });
  net.send(Address{1}, Address{2}, "hello");
  sim.run();
  EXPECT_EQ(received, "hello");
  EXPECT_EQ(received_at, SimTime::millis(5));
}

TEST(NetworkTest, UnattachedDestinationCountsAsDrop) {
  Simulator sim;
  TestNetwork net(sim, Rng(1));
  net.send(Address{1}, Address{9}, "void");
  sim.run();
  EXPECT_EQ(net.stats().dropped_no_route, 1u);
  EXPECT_EQ(net.stats().delivered, 0u);
}

TEST(NetworkTest, LossDropsApproximatelyAtRate) {
  Simulator sim;
  TestNetwork net(sim, Rng(42));
  net.set_default_link(LinkParams{SimTime::millis(1), SimTime{}, 0.25});
  int delivered = 0;
  net.attach(Address{2}, [&](Address, std::string) { ++delivered; });
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) net.send(Address{1}, Address{2}, "x");
  sim.run();
  EXPECT_NEAR(static_cast<double>(delivered) / kN, 0.75, 0.02);
  EXPECT_EQ(net.stats().sent, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(net.stats().delivered + net.stats().dropped_loss,
            static_cast<std::uint64_t>(kN));
}

TEST(NetworkTest, PerPairLinkOverridesDefault) {
  Simulator sim;
  TestNetwork net(sim, Rng(1));
  net.set_default_link(LinkParams{SimTime::millis(1), SimTime{}, 0.0});
  net.set_link(Address{1}, Address{2},
               LinkParams{SimTime::millis(50), SimTime{}, 0.0});
  SimTime at12, at21;
  net.attach(Address{2}, [&](Address, std::string) { at12 = sim.now(); });
  net.attach(Address{1}, [&](Address, std::string) { at21 = sim.now(); });
  net.send(Address{1}, Address{2}, "slow");
  net.send(Address{2}, Address{1}, "fast");
  sim.run();
  EXPECT_EQ(at12, SimTime::millis(50));  // override applies
  EXPECT_EQ(at21, SimTime::millis(1));   // reverse uses default
}

TEST(NetworkTest, JitterBoundsDelay) {
  Simulator sim;
  TestNetwork net(sim, Rng(7));
  net.set_default_link(
      LinkParams{SimTime::millis(10), SimTime::millis(5), 0.0});
  std::vector<SimTime> arrivals;
  net.attach(Address{2},
             [&](Address, std::string) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 200; ++i) net.send(Address{1}, Address{2}, "j");
  sim.run();
  for (const SimTime t : arrivals) {
    EXPECT_GE(t, SimTime::millis(10));
    EXPECT_LE(t, SimTime::millis(15));
  }
}

TEST(NetworkTest, FifoPreservedForEqualLatency) {
  Simulator sim;
  TestNetwork net(sim, Rng(1));
  std::vector<std::string> order;
  net.attach(Address{2},
             [&](Address, std::string p) { order.push_back(std::move(p)); });
  net.send(Address{1}, Address{2}, "first");
  net.send(Address{1}, Address{2}, "second");
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second"}));
}

// ---------------------------------------------------------------------------
// NetworkFaultState overlay
// ---------------------------------------------------------------------------

TEST(NetworkFaultTest, DownHostNeitherTransmitsNorReceives) {
  Simulator sim;
  TestNetwork net(sim, Rng(1));
  int delivered_to_2 = 0;
  int delivered_to_3 = 0;
  net.attach(Address{2}, [&](Address, std::string) { ++delivered_to_2; });
  net.attach(Address{3}, [&](Address, std::string) { ++delivered_to_3; });

  net.faults().set_host_down(Address{2}, true);
  net.send(Address{2}, Address{3}, "tx-from-down");  // dropped at send
  net.send(Address{3}, Address{2}, "rx-at-down");    // dropped at delivery
  sim.run();
  EXPECT_EQ(net.stats().dropped_host_down, 1u);
  EXPECT_EQ(net.stats().dropped_no_route, 1u);
  EXPECT_EQ(net.no_route_drops(Address{2}), 1u);
  EXPECT_EQ(delivered_to_2, 0);
  EXPECT_EQ(delivered_to_3, 0);

  net.faults().set_host_down(Address{2}, false);  // restart
  net.send(Address{2}, Address{3}, "alive");
  net.send(Address{3}, Address{2}, "alive");
  sim.run();
  EXPECT_EQ(delivered_to_2, 1);
  EXPECT_EQ(delivered_to_3, 1);
}

TEST(NetworkFaultTest, CrashMidFlightLosesTheDatagram) {
  // Reachability is evaluated at delivery time: a datagram in flight when
  // the destination crashes is lost, not delivered retroactively.
  Simulator sim;
  TestNetwork net(sim, Rng(1));
  net.set_default_link(LinkParams{SimTime::millis(10), SimTime{}, 0.0});
  int delivered = 0;
  net.attach(Address{2}, [&](Address, std::string) { ++delivered; });
  net.send(Address{1}, Address{2}, "in-flight");
  sim.schedule(SimTime::millis(5),
               [&] { net.faults().set_host_down(Address{2}, true); });
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.no_route_drops(Address{2}), 1u);
}

TEST(NetworkFaultTest, LinkDownIsDirected) {
  Simulator sim;
  TestNetwork net(sim, Rng(1));
  int fwd = 0;
  int rev = 0;
  net.attach(Address{1}, [&](Address, std::string) { ++rev; });
  net.attach(Address{2}, [&](Address, std::string) { ++fwd; });
  net.faults().set_link_down(Address{1}, Address{2}, true);
  net.send(Address{1}, Address{2}, "blocked");
  net.send(Address{2}, Address{1}, "open");
  sim.run();
  EXPECT_EQ(fwd, 0);
  EXPECT_EQ(rev, 1);
  EXPECT_EQ(net.stats().dropped_link_down, 1u);
}

TEST(NetworkFaultTest, LossBurstDropsOnTopOfBaseLink) {
  Simulator sim;
  TestNetwork net(sim, Rng(1));
  int delivered = 0;
  net.attach(Address{2}, [&](Address, std::string) { ++delivered; });
  net.faults().set_disturbance(Address{1}, Address{2},
                               NetworkFaultState::Disturbance{1.0, SimTime{}});
  for (int i = 0; i < 10; ++i) net.send(Address{1}, Address{2}, "x");
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().dropped_burst, 10u);

  net.faults().clear_disturbance(Address{1}, Address{2});
  net.send(Address{1}, Address{2}, "after");
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkFaultTest, LatencyBurstDelaysDelivery) {
  Simulator sim;
  TestNetwork net(sim, Rng(1));
  net.set_default_link(LinkParams{SimTime::millis(5), SimTime{}, 0.0});
  SimTime arrival;
  net.attach(Address{2}, [&](Address, std::string) { arrival = sim.now(); });
  net.faults().set_disturbance(
      Address{1}, Address{2},
      NetworkFaultState::Disturbance{0.0, SimTime::millis(20)});
  net.send(Address{1}, Address{2}, "slow");
  sim.run();
  EXPECT_EQ(arrival, SimTime::millis(25));
}

TEST(NetworkFaultTest, WildcardDisturbanceHitsEveryLinkExactPairWins) {
  Simulator sim;
  TestNetwork net(sim, Rng(1));
  net.set_default_link(LinkParams{SimTime::millis(1), SimTime{}, 0.0});
  SimTime at_2, at_3;
  net.attach(Address{2}, [&](Address, std::string) { at_2 = sim.now(); });
  net.attach(Address{3}, [&](Address, std::string) { at_3 = sim.now(); });
  // Network-wide +10ms, but the 1->3 link specifically gets +30ms.
  net.faults().set_disturbance(
      Address{}, Address{},
      NetworkFaultState::Disturbance{0.0, SimTime::millis(10)});
  net.faults().set_disturbance(
      Address{1}, Address{3},
      NetworkFaultState::Disturbance{0.0, SimTime::millis(30)});
  net.send(Address{1}, Address{2}, "wild");
  net.send(Address{1}, Address{3}, "exact");
  sim.run();
  EXPECT_EQ(at_2, SimTime::millis(11));
  EXPECT_EQ(at_3, SimTime::millis(31));
}

TEST(NetworkFaultTest, EmptyOverlayReportsNoFaults) {
  Simulator sim;
  TestNetwork net(sim, Rng(1));
  EXPECT_FALSE(net.faults().any());
  net.faults().set_host_down(Address{5}, true);
  EXPECT_TRUE(net.faults().any());
  net.faults().set_host_down(Address{5}, false);
  EXPECT_FALSE(net.faults().any());
}

// ---------------------------------------------------------------------------
// CpuQueue
// ---------------------------------------------------------------------------

TEST(CpuQueueTest, ServiceTimeIsCostOverCapacity) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{100.0, SimTime::seconds(10.0)});
  SimTime done_at;
  ASSERT_TRUE(cpu.submit(50.0, [&] { done_at = sim.now(); }));
  sim.run();
  EXPECT_EQ(done_at, SimTime::millis(500));  // 50/100 = 0.5s
}

TEST(CpuQueueTest, CapacityFactorScalesServiceTime) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{100.0, SimTime::seconds(10.0)});
  EXPECT_DOUBLE_EQ(cpu.capacity_factor(), 1.0);
  cpu.set_capacity_factor(0.5);  // degraded: half the nominal capacity
  SimTime slow_done;
  ASSERT_TRUE(cpu.submit(50.0, [&] { slow_done = sim.now(); }));
  EXPECT_EQ(cpu.backlog(), SimTime::seconds(1.0));  // 50 / (100 * 0.5)
  sim.run();
  EXPECT_EQ(slow_done, SimTime::seconds(1.0));
}

TEST(CpuQueueTest, DegradeRescalesUnservedBacklog) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{1.0, SimTime::seconds(100.0)});
  ASSERT_TRUE(cpu.submit(4.0, nullptr));  // 4s of work at nominal speed
  sim.run_until(SimTime::seconds(1.0));   // 3s still unserved
  cpu.set_capacity_factor(0.5);           // degrade: the remainder takes 6s
  EXPECT_EQ(cpu.backlog(), SimTime::seconds(6.0));
  // New work queues behind the stretched backlog at the degraded rate.
  SimTime done;
  ASSERT_TRUE(cpu.submit(1.0, [&] { done = sim.now(); }));
  sim.run();
  EXPECT_EQ(done, SimTime::seconds(9.0));  // 1 + 6 + 1/(1*0.5)
}

TEST(CpuQueueTest, RecoveryShrinksUnservedBacklog) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{1.0, SimTime::seconds(100.0)});
  cpu.set_capacity_factor(0.5);
  ASSERT_TRUE(cpu.submit(2.0, nullptr));  // 4s at half speed
  sim.run_until(SimTime::seconds(2.0));   // 2s still unserved
  cpu.set_capacity_factor(1.0);           // recover: the remainder takes 1s
  EXPECT_EQ(cpu.backlog(), SimTime::seconds(1.0));
}

TEST(CpuQueueTest, BusyElapsedContinuousAcrossRescale) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{1.0, SimTime::seconds(100.0)});
  UtilizationProbe probe(cpu, sim);
  ASSERT_TRUE(cpu.submit(10.0, nullptr));  // saturated well past the window
  sim.run_until(SimTime::seconds(1.0));
  const SimTime before = cpu.busy_elapsed(sim.now());
  cpu.set_capacity_factor(0.25);  // degrade mid-window
  EXPECT_EQ(cpu.busy_elapsed(sim.now()), before);  // no jump at the change
  sim.run_until(SimTime::seconds(2.0));
  // Saturated for the whole window regardless of the mid-window rescale.
  EXPECT_DOUBLE_EQ(probe.utilization(), 1.0);
}

TEST(CpuQueueTest, FifoBacklogAccumulates) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{1.0, SimTime::seconds(100.0)});
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        cpu.submit(1.0, [&] { completions.push_back(sim.now().to_seconds()); }));
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 2.0);
  EXPECT_DOUBLE_EQ(completions[2], 3.0);
}

TEST(CpuQueueTest, RejectsBeyondBacklogBound) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{1.0, SimTime::seconds(2.0)});
  EXPECT_TRUE(cpu.submit(1.0, nullptr));   // backlog 0 -> 1s
  EXPECT_TRUE(cpu.submit(1.0, nullptr));   // backlog 1 -> 2s
  EXPECT_TRUE(cpu.submit(1.0, nullptr));   // backlog 2s == bound -> admitted
  EXPECT_FALSE(cpu.submit(1.0, nullptr));  // backlog 3s > bound -> rejected
  EXPECT_EQ(cpu.stats().admitted, 3u);
  EXPECT_EQ(cpu.stats().rejected, 1u);
}

TEST(CpuQueueTest, UrgentBypassesAdmission) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{1.0, SimTime::seconds(0.5)});
  ASSERT_TRUE(cpu.submit(1.0, nullptr));
  EXPECT_FALSE(cpu.submit(1.0, nullptr));
  bool ran = false;
  cpu.submit_urgent(1.0, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(CpuQueueTest, BacklogDrainsOverTime) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{1.0, SimTime::seconds(10.0)});
  ASSERT_TRUE(cpu.submit(2.0, nullptr));
  EXPECT_EQ(cpu.backlog(), SimTime::seconds(2.0));
  sim.run_until(SimTime::seconds(1.5));
  EXPECT_EQ(cpu.backlog(), SimTime::millis(500));
  sim.run_until(SimTime::seconds(3.0));
  EXPECT_EQ(cpu.backlog(), SimTime{});
}

TEST(CpuQueueTest, BusyElapsedTracksWork) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{1.0, SimTime::seconds(10.0)});
  ASSERT_TRUE(cpu.submit(1.0, nullptr));
  sim.run_until(SimTime::seconds(4.0));
  // 1s of work in 4s elapsed.
  EXPECT_EQ(cpu.busy_elapsed(sim.now()), SimTime::seconds(1.0));
}

TEST(CpuQueueTest, UtilizationProbeMeasuresWindow) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{1.0, SimTime::seconds(100.0)});
  UtilizationProbe probe(cpu, sim);
  // Submit 1s of work every 2s: 50% utilization.
  for (int i = 0; i < 5; ++i) {
    sim.schedule(SimTime::seconds(2.0 * i),
                 [&] { ASSERT_TRUE(cpu.submit(1.0, nullptr)); });
  }
  sim.run_until(SimTime::seconds(10.0));
  EXPECT_NEAR(probe.utilization(), 0.5, 0.01);
}

TEST(CpuQueueTest, UtilizationSaturatesAtOne) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{1.0, SimTime::seconds(1000.0)});
  UtilizationProbe probe(cpu, sim);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(cpu.submit(1.0, nullptr));
  sim.run_until(SimTime::seconds(10.0));
  EXPECT_NEAR(probe.utilization(), 1.0, 1e-9);
}

TEST(CpuQueueTest, ProbeRestartForgetsHistory) {
  Simulator sim;
  CpuQueue cpu(sim, CpuQueueConfig{1.0, SimTime::seconds(1000.0)});
  UtilizationProbe probe(cpu, sim);
  ASSERT_TRUE(cpu.submit(1.0, nullptr));
  sim.run_until(SimTime::seconds(1.0));  // 100% so far
  probe.restart();
  sim.run_until(SimTime::seconds(2.0));  // idle second
  EXPECT_NEAR(probe.utilization(), 0.0, 1e-9);
}

}  // namespace
}  // namespace svk::sim
