// Unit tests for the SIP stack: URI parsing, message model, wire
// serialization round-trips, branch generation and transaction keys.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "sip/branch.hpp"
#include "sip/message.hpp"
#include "sip/methods.hpp"
#include "sip/parser.hpp"
#include "sip/uri.hpp"

namespace svk::sip {
namespace {

Message make_invite() {
  Message msg = Message::request(
      Method::kInvite, Uri("burdell", "cc.gatech.edu"),
      NameAddr{"Hal", Uri("hal", "us.ibm.com"), "tag-hal"},
      NameAddr{"", Uri("burdell", "cc.gatech.edu"), ""}, "call-1",
      CSeq{1, Method::kInvite});
  msg.push_via(Via{"SIP/2.0/UDP", "uac.us.ibm.com", "z9hG4bK-abc"});
  msg.set_contact(NameAddr{"", Uri("hal", "uac.us.ibm.com"), ""});
  return msg;
}

// ---------------------------------------------------------------------------
// Methods and status codes
// ---------------------------------------------------------------------------

TEST(MethodsTest, RoundTripAllMethods) {
  for (const Method m :
       {Method::kInvite, Method::kAck, Method::kBye, Method::kCancel,
        Method::kOptions, Method::kRegister, Method::kInfo, Method::kUpdate,
        Method::kSubscribe, Method::kNotify}) {
    EXPECT_EQ(parse_method(to_string(m)), m);
  }
}

TEST(MethodsTest, UnknownTokens) {
  EXPECT_EQ(parse_method("PUBLISH"), Method::kUnknown);
  EXPECT_EQ(parse_method("invite"), Method::kUnknown);  // case-sensitive
  EXPECT_EQ(parse_method(""), Method::kUnknown);
}

TEST(MethodsTest, ResponseClasses) {
  EXPECT_TRUE(is_provisional(100));
  EXPECT_TRUE(is_provisional(183));
  EXPECT_FALSE(is_provisional(200));
  EXPECT_TRUE(is_final(200));
  EXPECT_TRUE(is_final(500));
  EXPECT_TRUE(is_success(200));
  EXPECT_TRUE(is_success(299));
  EXPECT_FALSE(is_success(300));
}

TEST(MethodsTest, ReasonPhrases) {
  EXPECT_EQ(reason_phrase(100), "Trying");
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(500), "Server Internal Error");
  EXPECT_EQ(reason_phrase(999), "Unknown");
}

// ---------------------------------------------------------------------------
// Uri
// ---------------------------------------------------------------------------

TEST(UriTest, ParsesFullForm) {
  const auto result =
      Uri::parse("sip:hal@us.ibm.com:5060;transport=udp;lr");
  ASSERT_TRUE(result.ok());
  const Uri& uri = result.value();
  EXPECT_EQ(uri.scheme(), "sip");
  EXPECT_EQ(uri.user(), "hal");
  EXPECT_EQ(uri.host(), "us.ibm.com");
  EXPECT_EQ(uri.port(), 5060);
  EXPECT_EQ(uri.param("transport"), "udp");
  EXPECT_TRUE(uri.has_param("lr"));
  EXPECT_FALSE(uri.has_param("missing"));
}

TEST(UriTest, ParsesHostOnly) {
  const auto result = Uri::parse("sip:example.com");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().user(), "");
  EXPECT_EQ(result.value().host(), "example.com");
  EXPECT_EQ(result.value().port(), 0);
}

TEST(UriTest, ParsesSips) {
  const auto result = Uri::parse("sips:a@b.com");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().scheme(), "sips");
}

TEST(UriTest, RejectsMalformed) {
  EXPECT_FALSE(Uri::parse("").ok());
  EXPECT_FALSE(Uri::parse("nocolon").ok());
  EXPECT_FALSE(Uri::parse("http://x.com").ok());
  EXPECT_FALSE(Uri::parse("sip:").ok());
  EXPECT_FALSE(Uri::parse("sip:@host").ok());
  EXPECT_FALSE(Uri::parse("sip:user@").ok());
  EXPECT_FALSE(Uri::parse("sip:user@host:notaport").ok());
  EXPECT_FALSE(Uri::parse("sip:user@host:0").ok());
  EXPECT_FALSE(Uri::parse("sip:user@host:70000").ok());
  EXPECT_FALSE(Uri::parse("sip:user@:5060").ok());
}

TEST(UriTest, RoundTripsThroughToString) {
  for (const std::string text :
       {"sip:hal@us.ibm.com", "sip:host.only", "sip:a@b.c:5070",
        "sip:a@b.c;lr", "sip:a@b.c:1;x=y;flag"}) {
    const auto parsed = Uri::parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value().to_string(), text);
  }
}

TEST(UriTest, AorIgnoresPortAndParams) {
  const auto uri = Uri::parse("sip:hal@us.ibm.com:5060;lr");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri.value().aor(), "hal@us.ibm.com");
}

TEST(UriTest, EqualityIgnoresParams) {
  const auto a = Uri::parse("sip:u@h;x=1").value();
  const auto b = Uri::parse("sip:u@h;y=2").value();
  EXPECT_EQ(a, b);
  const auto c = Uri::parse("sip:u@h:5060").value();
  EXPECT_FALSE(a == c);
}

TEST(UriTest, SetParamReplaces) {
  Uri uri("u", "h");
  uri.set_param("x", "1");
  uri.set_param("x", "2");
  EXPECT_EQ(uri.param("x"), "2");
  EXPECT_EQ(uri.params().size(), 1u);
}

TEST(UriTest, QueryHeadersTolerated) {
  const auto uri = Uri::parse("sip:u@h?subject=hi");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri.value().host(), "h");
}

// ---------------------------------------------------------------------------
// Message model
// ---------------------------------------------------------------------------

TEST(MessageTest, RequestSkeleton) {
  const Message msg = make_invite();
  EXPECT_TRUE(msg.is_request());
  EXPECT_EQ(msg.method(), Method::kInvite);
  EXPECT_EQ(msg.call_id(), "call-1");
  EXPECT_EQ(msg.cseq().seq, 1u);
  EXPECT_EQ(msg.max_forwards(), 70);
}

TEST(MessageTest, ResponseCopiesIdentityHeaders) {
  const Message req = make_invite();
  const Message resp = Message::response(req, 180);
  EXPECT_TRUE(resp.is_response());
  EXPECT_EQ(resp.status_code(), 180);
  EXPECT_EQ(resp.reason(), "Ringing");
  EXPECT_EQ(resp.vias(), req.vias());
  EXPECT_EQ(resp.from(), req.from());
  EXPECT_EQ(resp.to(), req.to());
  EXPECT_EQ(resp.call_id(), req.call_id());
  EXPECT_EQ(resp.cseq(), req.cseq());
}

TEST(MessageTest, ResponseCustomReason) {
  const Message req = make_invite();
  const Message resp = Message::response(req, 500, "Busy Busy");
  EXPECT_EQ(resp.reason(), "Busy Busy");
}

TEST(MessageTest, ViaStackLifo) {
  Message msg = make_invite();
  msg.push_via(Via{"SIP/2.0/UDP", "p1.example.com", "z9hG4bK-p1"});
  msg.push_via(Via{"SIP/2.0/UDP", "p2.example.com", "z9hG4bK-p2"});
  EXPECT_EQ(msg.top_via().sent_by, "p2.example.com");
  msg.pop_via();
  EXPECT_EQ(msg.top_via().sent_by, "p1.example.com");
  EXPECT_EQ(msg.vias().size(), 2u);
}

TEST(MessageTest, ViaOrderingSurvivesMultiHopForwarding) {
  // Simulate the copy-on-forward chain UAC -> p1 -> p2: each hop clones the
  // shared message and pushes its own Via. The wire format must list the
  // newest Via first (RFC 3261 18.2.1), and the response return path must
  // pop them in reverse push order.
  Message invite = make_invite();  // top via: uac.us.ibm.com
  Message hop1 = clone(invite);
  hop1.push_via(Via{"SIP/2.0/UDP", "p1.example.com", "z9hG4bK-h1"});
  hop1.decrement_max_forwards();
  Message hop2 = clone(hop1);
  hop2.push_via(Via{"SIP/2.0/UDP", "p2.example.com", "z9hG4bK-h2"});
  hop2.decrement_max_forwards();

  ASSERT_EQ(hop2.vias().size(), 3u);
  EXPECT_EQ(hop2.top_via().sent_by, "p2.example.com");

  // Wire order: top (most recent) Via line first.
  const std::string wire = hop2.to_wire();
  const auto pos_p2 = wire.find("Via: SIP/2.0/UDP p2.example.com");
  const auto pos_p1 = wire.find("Via: SIP/2.0/UDP p1.example.com");
  const auto pos_uac = wire.find("Via: SIP/2.0/UDP uac.us.ibm.com");
  ASSERT_NE(pos_p2, std::string::npos);
  ASSERT_NE(pos_p1, std::string::npos);
  ASSERT_NE(pos_uac, std::string::npos);
  EXPECT_LT(pos_p2, pos_p1);
  EXPECT_LT(pos_p1, pos_uac);

  // Round-trip through the parser preserves the stack exactly.
  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().vias(), hop2.vias());
  EXPECT_EQ(parsed.value().top_via().sent_by, "p2.example.com");

  // Response return path: each proxy pops its own Via off the top.
  Message resp = Message::response(hop2, 200);
  EXPECT_EQ(resp.top_via().sent_by, "p2.example.com");
  resp.pop_via();
  EXPECT_EQ(resp.top_via().sent_by, "p1.example.com");
  resp.pop_via();
  EXPECT_EQ(resp.top_via().sent_by, "uac.us.ibm.com");
  EXPECT_EQ(resp.vias(), invite.vias());
}

TEST(MessageTest, ExtensionHeaders) {
  Message msg = make_invite();
  EXPECT_FALSE(msg.header("X-Stateful").has_value());
  msg.set_header("X-Stateful", "p1");
  EXPECT_EQ(msg.header("X-Stateful"), "p1");
  msg.set_header("X-Stateful", "p2");  // replace
  EXPECT_EQ(msg.header("X-Stateful"), "p2");
  EXPECT_EQ(msg.extension_headers().size(), 1u);
  msg.remove_header("X-Stateful");
  EXPECT_FALSE(msg.header("X-Stateful").has_value());
}

TEST(MessageTest, MaxForwardsDecrement) {
  Message msg = make_invite();
  msg.set_max_forwards(2);
  msg.decrement_max_forwards();
  EXPECT_EQ(msg.max_forwards(), 1);
}

TEST(MessageTest, CloneIsIndependent) {
  Message original = make_invite();
  Message copy = clone(original);
  copy.set_header("X-Test", "1");
  copy.pop_via();
  EXPECT_FALSE(original.header("X-Test").has_value());
  EXPECT_EQ(original.vias().size(), 1u);
}

TEST(MessageTest, HeaderCountReflectsContents) {
  Message msg = make_invite();
  const std::size_t base = msg.header_count();
  msg.set_header("X-A", "1");
  msg.record_routes().push_back(Uri("", "p1.example.com"));
  EXPECT_EQ(msg.header_count(), base + 2);
}

// ---------------------------------------------------------------------------
// Wire round-trips
// ---------------------------------------------------------------------------

TEST(WireTest, RequestRoundTrip) {
  Message msg = make_invite();
  msg.set_header("X-Stateful", "proxy0.example.net");
  msg.routes().push_back(Uri("", "p1.example.com"));
  msg.record_routes().push_back(Uri("", "p2.example.com"));
  msg.set_body("v=0");

  const std::string wire = msg.to_wire();
  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const Message& round = parsed.value();

  EXPECT_TRUE(round.is_request());
  EXPECT_EQ(round.method(), Method::kInvite);
  EXPECT_EQ(round.request_uri(), msg.request_uri());
  EXPECT_EQ(round.vias(), msg.vias());
  EXPECT_EQ(round.from(), msg.from());
  EXPECT_EQ(round.to(), msg.to());
  EXPECT_EQ(round.call_id(), msg.call_id());
  EXPECT_EQ(round.cseq(), msg.cseq());
  EXPECT_EQ(round.max_forwards(), msg.max_forwards());
  ASSERT_TRUE(round.contact().has_value());
  EXPECT_EQ(round.contact()->uri, msg.contact()->uri);
  EXPECT_EQ(round.routes().size(), 1u);
  EXPECT_EQ(round.record_routes().size(), 1u);
  EXPECT_EQ(round.header("X-Stateful"), "proxy0.example.net");
  EXPECT_EQ(round.body(), "v=0");
}

TEST(WireTest, ResponseRoundTrip) {
  const Message req = make_invite();
  Message resp = Message::response(req, 200);
  resp.to().tag = "uas-tag";
  resp.set_contact(NameAddr{"", Uri("", "uas0.example.com"), ""});

  const auto parsed = Parser::parse(resp.to_wire());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_TRUE(parsed.value().is_response());
  EXPECT_EQ(parsed.value().status_code(), 200);
  EXPECT_EQ(parsed.value().reason(), "OK");
  EXPECT_EQ(parsed.value().to().tag, "uas-tag");
  EXPECT_EQ(parsed.value().from().tag, "tag-hal");
}

class WireMethodRoundTrip : public ::testing::TestWithParam<Method> {};

TEST_P(WireMethodRoundTrip, PreservesMethod) {
  const Method method = GetParam();
  Message msg = Message::request(
      method, Uri("u", "example.com"),
      NameAddr{"", Uri("a", "x.com"), "t1"},
      NameAddr{"", Uri("b", "y.com"), ""}, "cid", CSeq{7, method});
  msg.push_via(Via{"SIP/2.0/UDP", "host.x.com", "z9hG4bK-1"});
  const auto parsed = Parser::parse(msg.to_wire());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().method(), method);
  EXPECT_EQ(parsed.value().cseq().method, method);
  EXPECT_EQ(parsed.value().cseq().seq, 7u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, WireMethodRoundTrip,
    ::testing::Values(Method::kInvite, Method::kAck, Method::kBye,
                      Method::kCancel, Method::kOptions, Method::kRegister,
                      Method::kSubscribe, Method::kNotify));

class WireStatusRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(WireStatusRoundTrip, PreservesStatus) {
  const Message req = make_invite();
  const Message resp = Message::response(req, GetParam());
  const auto parsed = Parser::parse(resp.to_wire());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().status_code(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(CommonCodes, WireStatusRoundTrip,
                         ::testing::Values(100, 180, 183, 200, 202, 302, 400,
                                           404, 407, 408, 483, 486, 500, 503,
                                           603));

TEST(WireTest, ViaOcParameterRoundTrip) {
  // RFC 7339-style overload feedback: the `oc` Via parameter carries the
  // permitted upstream rate and must survive serialize -> parse intact.
  const Message req = make_invite();
  Message resp = Message::response(req, 200);
  resp.top_via().oc_rate = 1234.5;

  const std::string wire = resp.to_wire();
  EXPECT_NE(wire.find(";oc=1234.500"), std::string::npos);

  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_DOUBLE_EQ(parsed.value().top_via().oc_rate, 1234.5);
}

TEST(WireTest, ViaOcAbsentByDefault) {
  // Without an overload policy no `oc` parameter reaches the wire, so
  // pre-overload-control byte streams (and their digests) are unchanged.
  const Message req = make_invite();
  const Message resp = Message::response(req, 200);
  const std::string wire = resp.to_wire();
  EXPECT_EQ(wire.find(";oc="), std::string::npos);

  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_LT(parsed.value().top_via().oc_rate, 0.0);
}

TEST(WireTest, ViaOcMalformedIgnored) {
  const Message req = make_invite();
  Message resp = Message::response(req, 200);
  std::string wire = resp.to_wire();
  const auto pos = wire.find("\r\n", wire.find("Via:"));
  ASSERT_NE(pos, std::string::npos);
  wire.insert(pos, ";oc=banana");
  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_LT(parsed.value().top_via().oc_rate, 0.0);
}

TEST(WireTest, DisplayNameRoundTrip) {
  Message msg = make_invite();
  const auto parsed = Parser::parse(msg.to_wire());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().from().display, "Hal");
}

TEST(WireTest, EmptyBodyContentLengthZero) {
  const std::string wire = make_invite().to_wire();
  EXPECT_NE(wire.find("Content-Length: 0\r\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parser negative cases
// ---------------------------------------------------------------------------

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(Parser::parse("").ok());
  EXPECT_FALSE(Parser::parse("hello world").ok());
  EXPECT_FALSE(Parser::parse("INVITE\r\n\r\n").ok());
}

TEST(ParserTest, RejectsWrongVersion) {
  EXPECT_FALSE(
      Parser::parse("INVITE sip:u@h SIP/1.0\r\nCall-ID: x\r\n\r\n").ok());
}

TEST(ParserTest, RejectsMissingMandatoryHeaders) {
  // Well-formed start line but no Call-ID/CSeq/From/To/Via.
  const std::string wire = "INVITE sip:u@h SIP/2.0\r\n\r\n";
  const auto parsed = Parser::parse(wire);
  EXPECT_FALSE(parsed.ok());
}

TEST(ParserTest, RejectsBadStatusCode) {
  EXPECT_FALSE(Parser::parse("SIP/2.0 99 Too Low\r\n\r\n").ok());
  EXPECT_FALSE(Parser::parse("SIP/2.0 abc Bad\r\n\r\n").ok());
}

TEST(ParserTest, RejectsTruncatedBody) {
  Message msg = make_invite();
  msg.set_body("0123456789");
  std::string wire = msg.to_wire();
  wire.resize(wire.size() - 5);  // cut body short
  EXPECT_FALSE(Parser::parse(wire).ok());
}

TEST(ParserTest, RejectsHeaderWithoutColon) {
  std::string wire = make_invite().to_wire();
  const auto pos = wire.find("Call-ID:");
  wire.replace(pos, 8, "Call-ID ");
  EXPECT_FALSE(Parser::parse(wire).ok());
}

TEST(ParserTest, ToleratesLfOnlyLineEndings) {
  std::string wire = make_invite().to_wire();
  std::string lf_only;
  for (const char c : wire) {
    if (c != '\r') lf_only += c;
  }
  EXPECT_TRUE(Parser::parse(lf_only).ok());
}

TEST(ParserTest, CompactHeaderNames) {
  const std::string wire =
      "INVITE sip:u@h SIP/2.0\r\n"
      "v: SIP/2.0/UDP client.com;branch=z9hG4bK-77\r\n"
      "f: <sip:a@x.com>;tag=t\r\n"
      "t: <sip:b@y.com>\r\n"
      "i: abc-123\r\n"
      "CSeq: 3 INVITE\r\n"
      "l: 0\r\n\r\n";
  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().call_id(), "abc-123");
  EXPECT_EQ(parsed.value().top_via().branch, "z9hG4bK-77");
  EXPECT_EQ(parsed.value().from().tag, "t");
}

TEST(ParserTest, NameAddrBareUriWithTag) {
  const auto na = parse_name_addr("sip:a@x.com;tag=abc");
  ASSERT_TRUE(na.ok());
  EXPECT_EQ(na.value().uri.aor(), "a@x.com");
  EXPECT_EQ(na.value().tag, "abc");
}

TEST(ParserTest, NameAddrRejectsUnterminatedDisplay) {
  EXPECT_FALSE(parse_name_addr("\"Hal <sip:a@x.com>").ok());
  EXPECT_FALSE(parse_name_addr("<sip:a@x.com").ok());
}

// ---------------------------------------------------------------------------
// Header folding and comma-combined multi-value headers (RFC 3261 7.3 /
// 7.3.1): equivalent wire forms peers are allowed to emit.
// ---------------------------------------------------------------------------

TEST(ParserTest, UnfoldsContinuationLines) {
  const std::string wire =
      "INVITE sip:u@h SIP/2.0\r\n"
      "Via: SIP/2.0/UDP\r\n"
      " client.com;branch=z9hG4bK-fold\r\n"
      "From: <sip:a@x.com>;tag=t\r\n"
      "To: <sip:b@y.com>\r\n"
      "Call-ID: fold-1\r\n"
      "CSeq: 3 INVITE\r\n"
      "Subject: I know you're there,\r\n"
      "\tpick up the phone!\r\n"
      "Content-Length: 0\r\n\r\n";
  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().top_via().sent_by, "client.com");
  EXPECT_EQ(parsed.value().top_via().branch, "z9hG4bK-fold");
  EXPECT_EQ(parsed.value().header("Subject"),
            "I know you're there, pick up the phone!");
}

TEST(ParserTest, SplitsCommaCombinedVias) {
  // One Via field listing two hops is equivalent to two Via fields; wire
  // order is top-first, the model stores the stack bottom-first.
  const std::string wire =
      "SIP/2.0 180 Ringing\r\n"
      "Via: SIP/2.0/UDP p1.com;branch=z9hG4bK-a, "
      "SIP/2.0/UDP client.com;branch=z9hG4bK-b\r\n"
      "From: <sip:a@x.com>;tag=t\r\n"
      "To: <sip:b@y.com>;tag=u\r\n"
      "Call-ID: comma-1\r\n"
      "CSeq: 1 INVITE\r\n"
      "Content-Length: 0\r\n\r\n";
  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const Message& msg = parsed.value();
  ASSERT_EQ(msg.vias().size(), 2u);
  EXPECT_EQ(msg.top_via().sent_by, "p1.com");
  EXPECT_EQ(msg.top_via().branch, "z9hG4bK-a");
  EXPECT_EQ(msg.vias().front().sent_by, "client.com");
}

TEST(ParserTest, CommaCombinedViasRoundTripAsSeparateLines) {
  const std::string wire =
      "INVITE sip:u@h SIP/2.0\r\n"
      "Via: SIP/2.0/UDP p1.com;branch=z9hG4bK-a, "
      "SIP/2.0/UDP client.com;branch=z9hG4bK-b\r\n"
      "From: <sip:a@x.com>;tag=t\r\n"
      "To: <sip:b@y.com>\r\n"
      "Call-ID: comma-2\r\n"
      "CSeq: 1 INVITE\r\n"
      "Content-Length: 0\r\n\r\n";
  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const auto round = Parser::parse(parsed.value().to_wire());
  ASSERT_TRUE(round.ok()) << round.error().message;
  EXPECT_EQ(round.value().vias(), parsed.value().vias());
}

TEST(ParserTest, SplitsCommaCombinedRouteSets) {
  const std::string wire =
      "BYE sip:u@h SIP/2.0\r\n"
      "Via: SIP/2.0/UDP client.com;branch=z9hG4bK-r\r\n"
      "Route: <sip:p1.example.com;lr>, <sip:p2.example.com;lr>\r\n"
      "Record-Route: <sip:p3.example.com>,<sip:p4.example.com>\r\n"
      "From: <sip:a@x.com>;tag=t\r\n"
      "To: <sip:b@y.com>;tag=u\r\n"
      "Call-ID: comma-3\r\n"
      "CSeq: 2 BYE\r\n"
      "Content-Length: 0\r\n\r\n";
  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const Message& msg = parsed.value();
  ASSERT_EQ(msg.routes().size(), 2u);
  EXPECT_EQ(msg.routes()[0].host(), "p1.example.com");
  EXPECT_EQ(msg.routes()[1].host(), "p2.example.com");
  ASSERT_EQ(msg.record_routes().size(), 2u);
  EXPECT_EQ(msg.record_routes()[0].host(), "p3.example.com");
  EXPECT_EQ(msg.record_routes()[1].host(), "p4.example.com");
}

TEST(ParserTest, CommaInsideQuotesOrBracketsDoesNotSplit) {
  // The list separator is a *top-level* comma: commas inside a quoted
  // display name or inside <...> belong to the value.
  const std::string wire =
      "INVITE sip:u@h SIP/2.0\r\n"
      "Via: SIP/2.0/UDP client.com;branch=z9hG4bK-q\r\n"
      "From: \"Smith, John\" <sip:a@x.com>;tag=t\r\n"
      "To: <sip:b@y.com>\r\n"
      "Record-Route: <sip:p1.example.com>, <sip:p2.example.com>\r\n"
      "Call-ID: comma-4\r\n"
      "CSeq: 1 INVITE\r\n"
      "Content-Length: 0\r\n\r\n";
  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().from().display, "Smith, John");
  ASSERT_EQ(parsed.value().record_routes().size(), 2u);
}

TEST(ParserTest, FoldedCommaCombinedViaList) {
  // Folding and comma-combining compose: a hop list wrapped across lines.
  const std::string wire =
      "SIP/2.0 200 OK\r\n"
      "Via: SIP/2.0/UDP p1.com;branch=z9hG4bK-a,\r\n"
      " SIP/2.0/UDP client.com;branch=z9hG4bK-b\r\n"
      "From: <sip:a@x.com>;tag=t\r\n"
      "To: <sip:b@y.com>;tag=u\r\n"
      "Call-ID: fold-comma\r\n"
      "CSeq: 1 INVITE\r\n"
      "Content-Length: 0\r\n\r\n";
  const auto parsed = Parser::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_EQ(parsed.value().vias().size(), 2u);
  EXPECT_EQ(parsed.value().top_via().sent_by, "p1.com");
  EXPECT_EQ(parsed.value().vias().front().branch, "z9hG4bK-b");
}

// ---------------------------------------------------------------------------
// Branches and transaction keys
// ---------------------------------------------------------------------------

TEST(BranchTest, GeneratorEmitsUniqueCookiePrefixed) {
  BranchGenerator gen(42);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::string branch = gen.next();
    EXPECT_TRUE(branch.starts_with(kMagicCookie)) << branch;
    EXPECT_TRUE(seen.insert(branch).second) << "duplicate " << branch;
  }
}

TEST(BranchTest, DistinctElementsDistinctBranches) {
  BranchGenerator a(1);
  BranchGenerator b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(BranchTest, StatelessBranchDeterministic) {
  const std::string b1 = stateless_branch("z9hG4bK-abc", "p1.example.com");
  const std::string b2 = stateless_branch("z9hG4bK-abc", "p1.example.com");
  EXPECT_EQ(b1, b2);
  EXPECT_TRUE(b1.starts_with(kMagicCookie));
  // Different host or input branch -> different output.
  EXPECT_NE(b1, stateless_branch("z9hG4bK-abc", "p2.example.com"));
  EXPECT_NE(b1, stateless_branch("z9hG4bK-abd", "p1.example.com"));
}

TEST(TxnKeyTest, AckMatchesInviteServerKey) {
  Message invite = make_invite();
  Message ack = Message::request(
      Method::kAck, invite.request_uri(), invite.from(), invite.to(),
      invite.call_id(), CSeq{1, Method::kAck});
  ack.push_via(invite.top_via());
  EXPECT_EQ(server_key(invite), server_key(ack));
}

TEST(TxnKeyTest, CancelDoesNotMatchInvite) {
  Message invite = make_invite();
  Message cancel = Message::request(
      Method::kCancel, invite.request_uri(), invite.from(), invite.to(),
      invite.call_id(), CSeq{1, Method::kCancel});
  cancel.push_via(invite.top_via());
  EXPECT_FALSE(server_key(invite) == server_key(cancel));
}

TEST(TxnKeyTest, ResponseMatchesClientKeyOfRequest) {
  const Message invite = make_invite();
  const Message resp = Message::response(invite, 180);
  // Client key of the response equals the key derived from the request's
  // top via + method.
  const TransactionKey expect{invite.top_via().branch,
                              invite.top_via().sent_by.str(), Method::kInvite};
  EXPECT_EQ(client_key(resp), expect);
}

TEST(TxnKeyTest, DifferentBranchesDifferentKeys) {
  Message a = make_invite();
  Message b = make_invite();
  b.top_via().branch = "z9hG4bK-other";
  EXPECT_FALSE(server_key(a) == server_key(b));
  TransactionKeyHash hash;
  EXPECT_NE(hash(server_key(a)), hash(server_key(b)));
}

TEST(TxnKeyTest, HashConsistentWithEquality) {
  const Message msg = make_invite();
  TransactionKeyHash hash;
  EXPECT_EQ(hash(server_key(msg)), hash(server_key(msg)));
}

// ---------------------------------------------------------------------------
// Generator-based wire properties
// ---------------------------------------------------------------------------
//
// A seeded generator produces structurally varied messages (deep Via
// stacks past the SmallVector inline capacity of 4, route sets past their
// inline capacity of 2, extension headers, bodies, oc feedback), and the
// parser must (a) reproduce them bit-for-bit from the wire and (b) survive
// arbitrarily torn/truncated datagrams without crashing — a UDP receiver
// sees whatever the network delivers.

Message random_message(Rng& rng) {
  static constexpr const char* kUsers[] = {"alice", "bob", "", "burdell"};
  static constexpr const char* kHosts[] = {"a.example.com", "b.example.org",
                                           "proxy0.example.net",
                                           "uas3.callee.example.net"};
  static constexpr const char* kDisplays[] = {"", "Hal", "Op Ratio"};
  static constexpr Method kMethods[] = {Method::kInvite, Method::kBye,
                                        Method::kRegister, Method::kOptions};
  const auto user = [&] { return kUsers[rng.uniform_int(4)]; };
  const auto host = [&] { return kHosts[rng.uniform_int(4)]; };
  const auto display = [&] { return kDisplays[rng.uniform_int(3)]; };

  const Method method = kMethods[rng.uniform_int(4)];
  Message msg = Message::request(
      method, Uri(user(), host()),
      NameAddr{display(), Uri(user(), host()),
               "tag-" + std::to_string(rng.uniform_int(1000))},
      NameAddr{display(), Uri(user(), host()), ""},
      "call-" + std::to_string(rng.uniform_int(100000)),
      CSeq{static_cast<std::uint32_t>(1 + rng.uniform_int(5000)), method});

  // 1..10 Vias: well past ViaList's inline capacity of 4, so growth into
  // heap storage (and back through the parser) is always exercised.
  const std::size_t num_vias = 1 + rng.uniform_int(10);
  for (std::size_t i = 0; i < num_vias; ++i) {
    Via via{rng.uniform_int(2) == 0 ? "SIP/2.0/UDP" : "SIP/2.0/TCP", host(),
            "z9hG4bK-" + std::to_string(rng.uniform_int(1u << 30))};
    if (rng.uniform_int(3) == 0) {
      // %.3f serialization: eighths round-trip exactly through strtod.
      via.oc_rate = static_cast<double>(rng.uniform_int(8000)) / 8.0;
    }
    msg.push_via(std::move(via));
  }

  for (std::size_t i = rng.uniform_int(5); i > 0; --i) {
    msg.routes().push_back(Uri("", host()));
  }
  for (std::size_t i = rng.uniform_int(5); i > 0; --i) {
    msg.record_routes().push_back(Uri("", host()));
  }
  for (std::size_t i = rng.uniform_int(4); i > 0; --i) {
    msg.set_header("X-Prop-" + std::to_string(i),
                   "v" + std::to_string(rng.uniform_int(100)));
  }
  if (rng.uniform_int(2) == 0) {
    msg.set_contact(NameAddr{display(), Uri(user(), host()), ""});
  }
  if (rng.uniform_int(2) == 0) {
    std::string body;
    for (std::size_t i = 1 + rng.uniform_int(40); i > 0; --i) {
      body += static_cast<char>('a' + rng.uniform_int(26));
    }
    msg.set_body(body);
  }
  msg.set_max_forwards(static_cast<int>(rng.uniform_int(71)));
  return msg;
}

TEST(WirePropertyTest, RandomMessagesRoundTripExactly) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const Message msg = random_message(rng);
    const auto parsed = Parser::parse(msg.to_wire());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const Message& round = parsed.value();
    EXPECT_EQ(round.method(), msg.method());
    EXPECT_EQ(round.request_uri(), msg.request_uri());
    EXPECT_EQ(round.vias(), msg.vias());
    EXPECT_EQ(round.from(), msg.from());
    EXPECT_EQ(round.to(), msg.to());
    EXPECT_EQ(round.call_id(), msg.call_id());
    EXPECT_EQ(round.cseq(), msg.cseq());
    EXPECT_EQ(round.max_forwards(), msg.max_forwards());
    EXPECT_EQ(round.routes(), msg.routes());
    EXPECT_EQ(round.record_routes(), msg.record_routes());
    EXPECT_EQ(round.body(), msg.body());
    // The reparse must be a fixed point of serialization.
    EXPECT_EQ(round.to_wire(), msg.to_wire());
  }
}

TEST(WirePropertyTest, OversizedViaChainSurvivesCommaCombinedForm) {
  // Some elements comma-combine Via headers (RFC 3261 7.3.1). Fold a
  // 9-deep stack into a single header line: the parser must split it back
  // into the identical stack, growing past the inline capacity.
  Message msg = make_invite();
  msg.pop_via();
  for (int i = 0; i < 9; ++i) {
    msg.push_via(Via{"SIP/2.0/UDP", "h" + std::to_string(i) + ".example.com",
                     "z9hG4bK-v" + std::to_string(i)});
  }
  const std::string wire = msg.to_wire();

  // Splice every "Via: ..." line into one comma-separated value, keeping
  // all other lines (request line first) in order.
  std::string combined;
  std::string rest;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t eol = wire.find("\r\n", pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string_view line(wire.data() + pos, eol - pos);
    if (line.substr(0, 4) == "Via:") {
      if (!combined.empty()) combined += ", ";
      combined += std::string(line.substr(5));
    } else {
      rest += std::string(line);
      rest += "\r\n";
    }
    pos = eol + 2;
  }
  const std::size_t after_request_line = rest.find("\r\n") + 2;
  const std::string rewired = rest.substr(0, after_request_line) + "Via: " +
                              combined + "\r\n" +
                              rest.substr(after_request_line);

  const auto parsed = Parser::parse(rewired);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().vias(), msg.vias());
}

TEST(WirePropertyTest, TruncatedDatagramsNeverCrashParser) {
  // Cut every generated wire at every byte offset. The parser must return
  // (an error or, for the rare self-delimiting prefix, a message) without
  // crashing or reading past the buffer; any accepted prefix must itself
  // round-trip cleanly.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const std::string wire = random_message(rng).to_wire();
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      const auto parsed = Parser::parse(std::string_view(wire).substr(0, cut));
      if (parsed.ok()) {
        const auto again = Parser::parse(parsed.value().to_wire());
        ASSERT_TRUE(again.ok())
            << "accepted prefix (cut=" << cut << ") does not round-trip";
      }
    }
  }
}

TEST(WirePropertyTest, TornDatagramsNeverCrashParser) {
  // A torn datagram: a random interior span deleted (two fragments glued
  // together), as produced by a splitting sender or a corrupting path.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed ^ 0x7EA7);
    const std::string wire = random_message(rng).to_wire();
    for (int trial = 0; trial < 200; ++trial) {
      const std::size_t a = rng.uniform_int(wire.size());
      const std::size_t b = a + rng.uniform_int(wire.size() - a);
      std::string torn = wire.substr(0, a) + wire.substr(b);
      const auto parsed = Parser::parse(torn);
      if (parsed.ok()) {
        const auto again = Parser::parse(parsed.value().to_wire());
        ASSERT_TRUE(again.ok())
            << "accepted torn datagram [" << a << "," << b
            << ") does not round-trip";
      }
    }
  }
}

}  // namespace
}  // namespace svk::sip
