// Flat slab-backed state store (DESIGN.md §12): the open-addressing
// FlatTable, the generation-tagged Slab, and the precomputed-key probes the
// state layer runs on. Covers:
//
//   * pinned hash constants — the FNV-1a / mixing constants feed transaction
//     keys, dialog ids and the network's per-datagram RNG seeds, so any
//     drift silently changes every golden digest;
//   * probe ≡ legacy-key equivalence — txn_key_hash / dialog_id_hash must
//     produce bit-identical hashes to the owning-key hashers they replaced;
//   * a seeded property test churning FlatTable+Slab against a
//     std::unordered_map oracle (same finds, same survivors);
//   * backward-shift deletion under forced hash collisions;
//   * generation safety — a handle held across erase-and-reuse resolves to
//     nullptr, never to the slot's new occupant;
//   * erase-during-for_each (the expire_early / clear sweep pattern);
//   * the zero-steady-state-allocation contract the perf gate enforces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/flat_table.hpp"
#include "common/hash.hpp"
#include "common/slab.hpp"
#include "dialog/dialog.hpp"
#include "sip/branch.hpp"
#include "sip/message.hpp"

namespace svk {
namespace {

// ---------------------------------------------------------------------------
// Hash constants and primitives
// ---------------------------------------------------------------------------

TEST(HashConstants, PinnedValues) {
  // These feed every transaction key, dialog id and datagram RNG seed.
  // Changing any of them changes every golden digest — this test makes such
  // a change loud and deliberate.
  EXPECT_EQ(common::kFnvOffsetBasis, 0xcbf29ce484222325ULL);
  EXPECT_EQ(common::kFnvPrime, 0x100000001b3ULL);
  EXPECT_EQ(common::kGolden64, 0x9E3779B97F4A7C15ULL);
  EXPECT_EQ(common::kSplitMix64A, 0xBF58476D1CE4E5B9ULL);
}

TEST(HashConstants, Fnv1aReferenceVectors) {
  // Classic FNV-1a 64-bit test vectors.
  EXPECT_EQ(common::fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(common::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(common::fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashConstants, ChainedFnv1aEqualsConcatenated) {
  // Chaining through the seed parameter must equal hashing the
  // concatenation — this is what lets multi-part keys hash without
  // materializing a joined string (location's user '@' host, dialog's
  // call-id + tags).
  const std::uint64_t chained = common::fnv1a(
      "host", common::fnv1a_byte('@', common::fnv1a("user")));
  EXPECT_EQ(chained, common::fnv1a("user@host"));
}

TEST(HashConstants, CounterSeedFormula) {
  const std::uint64_t base = 0x1234'5678'9abc'def0ULL;
  const std::uint64_t stream = 42;
  const std::uint64_t n = 7;
  EXPECT_EQ(common::counter_seed(base, stream, n),
            base ^ (stream * common::kGolden64) ^ (n * common::kSplitMix64A));
  EXPECT_EQ(common::counter_seed(base, 0, 0), base);
}

// ---------------------------------------------------------------------------
// Probe ≡ legacy key-hash equivalence
// ---------------------------------------------------------------------------

TEST(ProbeEquivalence, TxnKeyHashMatchesLegacyHasher) {
  const sip::TransactionKey keys[] = {
      {"z9hG4bK-abc123", "p1.example.test", sip::Method::kInvite},
      {"z9hG4bK-abc123", "p1.example.test", sip::Method::kBye},
      {"z9hG4bK-abc123", "p2.example.test", sip::Method::kInvite},
      {"", "", sip::Method::kCancel},
  };
  for (const sip::TransactionKey& key : keys) {
    EXPECT_EQ(sip::txn_key_hash(key.branch, key.sent_by, key.method),
              sip::TransactionKeyHash{}(key));
    const sip::TxnProbe probe = sip::key_probe(key);
    EXPECT_EQ(probe.hash, sip::TransactionKeyHash{}(key));
    EXPECT_TRUE(probe.matches(key.branch, key.sent_by, key.method));
  }
  // Method participates in the hash (CANCEL vs INVITE share branch).
  EXPECT_NE(
      sip::txn_key_hash("z9hG4bK-x", "h", sip::Method::kInvite),
      sip::txn_key_hash("z9hG4bK-x", "h", sip::Method::kCancel));
}

TEST(ProbeEquivalence, RequestProbeMatchesServerKey) {
  sip::Message invite = sip::Message::request(
      sip::Method::kInvite, sip::Uri("user0", "cc.gatech.edu"),
      sip::NameAddr{"", sip::Uri("caller", "uac.test"), "tag1"},
      sip::NameAddr{"", sip::Uri("user0", "cc.gatech.edu"), ""}, "call-1",
      sip::CSeq{1, sip::Method::kInvite});
  invite.push_via(sip::Via{"SIP/2.0/UDP", "uac.test", "z9hG4bK-req-1"});
  const auto invite_ptr = std::move(invite).finish();

  const sip::TransactionKey key = sip::server_key(*invite_ptr);
  const sip::TxnProbe probe = sip::key_for_request(*invite_ptr);
  EXPECT_EQ(probe.hash, sip::TransactionKeyHash{}(key));
  EXPECT_TRUE(probe.matches(key.branch, key.sent_by, key.method));

  // ACK must probe the INVITE transaction (RFC 3261 17.2.3).
  sip::Message ack = sip::Message::request(
      sip::Method::kAck, sip::Uri("user0", "cc.gatech.edu"),
      sip::NameAddr{"", sip::Uri("caller", "uac.test"), "tag1"},
      sip::NameAddr{"", sip::Uri("user0", "cc.gatech.edu"), "tag2"}, "call-1",
      sip::CSeq{1, sip::Method::kAck});
  ack.push_via(sip::Via{"SIP/2.0/UDP", "uac.test", "z9hG4bK-req-1"});
  const auto ack_ptr = std::move(ack).finish();
  const sip::TxnProbe ack_probe = sip::key_for_request(*ack_ptr);
  EXPECT_EQ(ack_probe.hash, probe.hash);
  EXPECT_EQ(ack_probe.method, sip::Method::kInvite);
}

TEST(ProbeEquivalence, ResponseProbeMatchesClientKey) {
  sip::Message invite = sip::Message::request(
      sip::Method::kInvite, sip::Uri("user0", "cc.gatech.edu"),
      sip::NameAddr{"", sip::Uri("caller", "uac.test"), "tag1"},
      sip::NameAddr{"", sip::Uri("user0", "cc.gatech.edu"), ""}, "call-2",
      sip::CSeq{1, sip::Method::kInvite});
  invite.push_via(sip::Via{"SIP/2.0/UDP", "uac.test", "z9hG4bK-resp-1"});
  const auto invite_ptr = std::move(invite).finish();
  const auto ok = sip::Message::response(*invite_ptr, 200).finish();

  const sip::TransactionKey key = sip::client_key(*ok);
  const sip::TxnProbe probe = sip::key_for_response(*ok);
  EXPECT_EQ(probe.hash, sip::TransactionKeyHash{}(key));
  EXPECT_TRUE(probe.matches(key.branch, key.sent_by, key.method));
}

TEST(ProbeEquivalence, DialogIdHashMatchesLegacyHasher) {
  const dialog::DialogId id = dialog::DialogId::make("call-3", "ztag", "atag");
  EXPECT_EQ(dialog::dialog_id_hash(id.call_id, id.tag_a, id.tag_b),
            dialog::DialogIdHash{}(id));

  // DialogProbe normalizes tag order exactly like DialogId::make: both
  // directions of the same dialog produce the same probe.
  const dialog::DialogProbe forward =
      dialog::DialogProbe::make("call-3", "ztag", "atag");
  const dialog::DialogProbe reverse =
      dialog::DialogProbe::make("call-3", "atag", "ztag");
  EXPECT_EQ(forward.hash, reverse.hash);
  EXPECT_EQ(forward.hash, dialog::DialogIdHash{}(id));
  EXPECT_TRUE(forward.matches(id));
  EXPECT_TRUE(reverse.matches(id));
}

// ---------------------------------------------------------------------------
// FlatTable + Slab vs unordered_map oracle (seeded property test)
// ---------------------------------------------------------------------------

struct Entry {
  std::string key;
  std::uint64_t value = 0;
};

class StoreUnderTest {
 public:
  void insert(const std::string& key, std::uint64_t value) {
    const common::SlabHandle slot = slab_.emplace(Entry{key, value});
    table_.insert(common::fnv1a(key), slot);
  }

  [[nodiscard]] const Entry* find(std::string_view key) {
    common::SlabHandle* slot = table_.find(
        common::fnv1a(key),
        [&](const common::SlabHandle& h) { return slab_.get(h)->key == key; });
    return slot != nullptr ? slab_.get(*slot) : nullptr;
  }

  bool erase(std::string_view key) {
    Entry* found = nullptr;
    common::SlabHandle handle;
    const bool erased = table_.erase(
        common::fnv1a(key), [&](const common::SlabHandle& h) {
          Entry* e = slab_.get(h);
          if (e->key != key) return false;
          found = e;
          handle = h;
          return true;
        });
    if (erased) slab_.erase(handle);
    (void)found;
    return erased;
  }

  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] common::Slab<Entry>& slab() { return slab_; }
  [[nodiscard]] common::FlatTable<common::SlabHandle>& table() {
    return table_;
  }

 private:
  common::Slab<Entry> slab_;
  common::FlatTable<common::SlabHandle> table_;
};

// Deterministic generator (tests must not depend on std::hash or libc rand).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 16;
  }

 private:
  std::uint64_t state_;
};

TEST(StateStoreProperty, ChurnMatchesUnorderedMapOracle) {
  StoreUnderTest store;
  std::unordered_map<std::string, std::uint64_t> oracle;
  Lcg rng(0xfeedULL);

  constexpr std::size_t kKeyUniverse = 1500;
  constexpr std::size_t kOps = 120'000;
  std::vector<std::string> keys;
  keys.reserve(kKeyUniverse);
  for (std::size_t i = 0; i < kKeyUniverse; ++i) {
    keys.push_back("z9hG4bK-" + std::to_string(i) + "@proxy" +
                   std::to_string(i % 7) + ".example.test");
  }

  for (std::size_t op = 0; op < kOps; ++op) {
    const std::string& key = keys[rng.next() % kKeyUniverse];
    switch (rng.next() % 3) {
      case 0: {  // insert-if-absent
        if (oracle.find(key) == oracle.end()) {
          const std::uint64_t value = rng.next();
          oracle.emplace(key, value);
          store.insert(key, value);
        }
        break;
      }
      case 1: {  // erase
        const bool oracle_erased = oracle.erase(key) > 0;
        EXPECT_EQ(store.erase(key), oracle_erased);
        break;
      }
      default: {  // find
        const auto it = oracle.find(key);
        const Entry* found = store.find(key);
        if (it == oracle.end()) {
          EXPECT_EQ(found, nullptr) << key;
        } else {
          ASSERT_NE(found, nullptr) << key;
          EXPECT_EQ(found->value, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(store.size(), oracle.size());
  }

  // Survivors agree exactly (for_each sees every live entry once).
  std::unordered_map<std::string, std::uint64_t> walked;
  store.slab().for_each([&](common::SlabHandle, Entry& e) {
    EXPECT_TRUE(walked.emplace(e.key, e.value).second) << e.key;
  });
  EXPECT_EQ(walked, oracle);
}

TEST(FlatTable, BackwardShiftKeepsCollidingClusterFindable) {
  // Forced full-hash collisions: all entries share one hash, equality
  // disambiguates — erasing from the middle of the cluster must backward-
  // shift the rest so probes never hit a premature empty slot.
  common::FlatTable<int> table;
  constexpr std::uint64_t kHash = 0x42;
  for (int i = 0; i < 9; ++i) table.insert(kHash, i);

  EXPECT_TRUE(table.erase(kHash, [](int v) { return v == 4; }));
  EXPECT_TRUE(table.erase(kHash, [](int v) { return v == 0; }));
  EXPECT_TRUE(table.erase(kHash, [](int v) { return v == 8; }));
  EXPECT_EQ(table.size(), 6u);
  for (const int v : {1, 2, 3, 5, 6, 7}) {
    const int* found = table.find(kHash, [&](int x) { return x == v; });
    ASSERT_NE(found, nullptr) << v;
    EXPECT_EQ(*found, v);
  }
  EXPECT_EQ(table.find(kHash, [](int v) { return v == 4; }), nullptr);
}

TEST(FlatTable, ZeroHashIsStoredAndFound) {
  // Hash 0 marks empty slots internally; a real key hashing to 0 must still
  // round-trip (it is nudged to kGolden64 under the hood).
  common::FlatTable<int> table;
  table.insert(0, 7);
  const int* found = table.find(0, [](int v) { return v == 7; });
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(table.erase(0, [](int v) { return v == 7; }));
  EXPECT_TRUE(table.empty());
}

// ---------------------------------------------------------------------------
// Slab generation safety
// ---------------------------------------------------------------------------

TEST(Slab, StaleHandleAfterReuseResolvesNull) {
  common::Slab<Entry> slab;
  const common::SlabHandle first = slab.emplace(Entry{"old", 1});
  ASSERT_NE(slab.get(first), nullptr);

  ASSERT_TRUE(slab.erase(first));
  EXPECT_EQ(slab.get(first), nullptr);

  // The freed slot is reused (same index, bumped generation): the old
  // handle must NOT resolve to the new occupant. This is the guarantee the
  // scheduled-removal path leans on — a TxnHandle captured by a callback
  // can outlive its transaction and a same-slot successor.
  const common::SlabHandle second = slab.emplace(Entry{"new", 2});
  ASSERT_EQ(second.index, first.index);
  EXPECT_GT(second.generation, first.generation);
  EXPECT_EQ(slab.get(first), nullptr);
  ASSERT_NE(slab.get(second), nullptr);
  EXPECT_EQ(slab.get(second)->key, "new");

  // Erasing through the stale handle is a harmless no-op.
  EXPECT_FALSE(slab.erase(first));
  EXPECT_EQ(slab.size(), 1u);
}

TEST(Slab, NullHandleResolvesNull) {
  common::Slab<Entry> slab;
  EXPECT_EQ(slab.get(common::SlabHandle{}), nullptr);
  EXPECT_FALSE(slab.erase(common::SlabHandle{}));
}

TEST(Slab, EraseDuringForEachVisitsEveryLiveObject) {
  // The expire_early sweep erases visited objects mid-walk; DialogManager's
  // correctness depends on the walk still reaching every other live slot.
  common::Slab<Entry> slab;
  std::vector<common::SlabHandle> handles;
  for (std::uint64_t i = 0; i < 600; ++i) {
    handles.push_back(slab.emplace(Entry{std::to_string(i), i}));
  }
  std::size_t visited = 0;
  slab.for_each([&](common::SlabHandle h, Entry& e) {
    ++visited;
    if (e.value % 3 == 0) slab.erase(h);  // erase the visited object
  });
  EXPECT_EQ(visited, 600u);
  EXPECT_EQ(slab.size(), 400u);
  for (std::uint64_t i = 0; i < 600; ++i) {
    EXPECT_EQ(slab.get(handles[i]) != nullptr, i % 3 != 0) << i;
  }
}

// ---------------------------------------------------------------------------
// Zero steady-state allocation contract
// ---------------------------------------------------------------------------

TEST(StateStore, SteadyChurnMakesNoAllocations) {
  StoreUnderTest store;
  constexpr std::size_t kPopulation = 4096;
  std::vector<std::string> keys;
  keys.reserve(kPopulation);
  for (std::size_t i = 0; i < kPopulation; ++i) {
    keys.push_back("z9hG4bK-warm-" + std::to_string(i));
    store.insert(keys.back(), i);
  }

  const std::uint64_t chunk_allocs = store.slab().stats().chunk_allocs;
  const std::uint64_t grows = store.table().stats().grows;
  EXPECT_GT(chunk_allocs, 0u);
  EXPECT_GT(grows, 0u);

  // Steady state: live count plateaus, every erase is matched by an
  // insert. The slab serves from its freelist and the table stays at its
  // settled capacity — the exact contract bench_perf_core gates on.
  Lcg rng(0xabcdULL);
  for (std::size_t round = 0; round < 50'000; ++round) {
    const std::string& key = keys[rng.next() % kPopulation];
    ASSERT_TRUE(store.erase(key));
    store.insert(key, round);
  }
  EXPECT_EQ(store.slab().stats().chunk_allocs, chunk_allocs);
  EXPECT_EQ(store.table().stats().grows, grows);
  EXPECT_GT(store.slab().stats().freelist_reuses, 0u);
  EXPECT_EQ(store.size(), kPopulation);
}

TEST(FlatTable, ReservePreallocatesSteadyCapacity) {
  common::FlatTable<int> table;
  table.reserve(1000);
  const std::uint64_t grows = table.stats().grows;
  EXPECT_GE(table.capacity() * 3, 1000u * 4);
  for (int i = 0; i < 1000; ++i) {
    table.insert(static_cast<std::uint64_t>(i) * common::kGolden64, i);
  }
  EXPECT_EQ(table.stats().grows, grows);  // no growth after reserve
  EXPECT_EQ(table.size(), 1000u);
}

}  // namespace
}  // namespace svk
