// Timer-wheel event store: ordering vs a reference heap, eager-cancel
// memory behavior, zero-allocation steady state, and schedule/cancel-heavy
// determinism. These pin the contracts the simulator core swap relies on
// (see src/sim/timer_wheel.hpp for the invariants being exercised).
#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/md5.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"
#include "sip/message.hpp"
#include "sip/message_pool.hpp"
#include "sip/parser.hpp"

namespace svk::sim {
namespace {

using svk::Rng;

/// Delays spanning every wheel regime: same-tick, low levels, RFC 3261
/// timer scale, top level, and past-the-horizon (overflow heap).
std::int64_t random_delay_ns(Rng& rng) {
  switch (rng.uniform_int(6)) {
    case 0: return 0;                                             // same tick
    case 1: return static_cast<std::int64_t>(rng.uniform_int(64));
    case 2: return static_cast<std::int64_t>(rng.uniform_int(500'000));
    case 3: return 500'000'000 +                                  // timer A..F
                   static_cast<std::int64_t>(rng.uniform_int(63'500'000'000));
    case 4: return static_cast<std::int64_t>(rng.uniform_int(1ll << 46));
    default:                                                      // overflow
      return (1ll << 48) +
             static_cast<std::int64_t>(rng.uniform_int(1ll << 49));
  }
}

// ---------------------------------------------------------------------------
// Ordering: the wheel must pop events in exactly (time, schedule-order),
// matching the old priority-queue tie-break. Oracle: a sorted list.
// ---------------------------------------------------------------------------

TEST(TimerWheelTest, MatchesReferenceOrderUnderRandomChurn) {
  Rng rng(0xfeedfaceu);
  TimerWheel wheel;

  struct Expected {
    std::int64_t at;
    std::uint64_t seq;
    EventId id;
  };
  std::vector<Expected> oracle;  // live events, unsorted
  std::vector<std::uint64_t> popped_seqs;
  std::uint64_t next_seq = 0;
  std::int64_t now = 0;

  for (int round = 0; round < 2000; ++round) {
    // Burst of schedules.
    const std::uint64_t burst = 1 + rng.uniform_int(8);
    for (std::uint64_t i = 0; i < burst; ++i) {
      const std::int64_t at = now + random_delay_ns(rng);
      const std::uint64_t seq = next_seq++;
      const EventId id = wheel.insert(
          SimTime::nanos(at),
          [seq, &popped_seqs] { popped_seqs.push_back(seq); });
      oracle.push_back(Expected{at, seq, id});
    }
    // Some cancels.
    while (!oracle.empty() && rng.uniform() < 0.25) {
      const std::size_t victim = rng.uniform_int(oracle.size());
      ASSERT_TRUE(wheel.cancel(oracle[victim].id));
      oracle.erase(oracle.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    // Pop a few events and check exact (time, seq) order.
    std::sort(oracle.begin(), oracle.end(),
              [](const Expected& a, const Expected& b) {
                return a.at != b.at ? a.at < b.at : a.seq < b.seq;
              });
    const std::uint64_t pops = rng.uniform_int(6);
    for (std::uint64_t i = 0; i < pops && !oracle.empty(); ++i) {
      SimTime at;
      EventAction action;
      ASSERT_TRUE(wheel.pop_until(SimTime::max(), &at, &action));
      action();
      ASSERT_EQ(at.ns(), oracle.front().at);
      ASSERT_EQ(popped_seqs.back(), oracle.front().seq);
      now = std::max(now, at.ns());
      oracle.erase(oracle.begin());
    }
    ASSERT_EQ(wheel.size(), oracle.size());
  }

  // Drain; order must stay exact to the end.
  std::sort(oracle.begin(), oracle.end(),
            [](const Expected& a, const Expected& b) {
              return a.at != b.at ? a.at < b.at : a.seq < b.seq;
            });
  for (const Expected& e : oracle) {
    SimTime at;
    EventAction action;
    ASSERT_TRUE(wheel.pop_until(SimTime::max(), &at, &action));
    action();
    ASSERT_EQ(at.ns(), e.at);
    ASSERT_EQ(popped_seqs.back(), e.seq);
  }
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_FALSE(wheel.pop_until(SimTime::max(), nullptr, nullptr));
}

// ---------------------------------------------------------------------------
// Memory behavior under heavy schedule/cancel churn.
// ---------------------------------------------------------------------------

TEST(TimerWheelTest, CancelIsEagerAndCapacityStaysBounded) {
  Simulator sim;
  constexpr std::size_t kBatch = 20'000;

  // Warm the pool with one full batch.
  std::vector<EventId> ids;
  ids.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    ids.push_back(sim.schedule(SimTime::seconds(1.0 + double(i % 180)),
                               [] {}));
  }
  EXPECT_EQ(sim.pending_count(), kBatch);
  for (EventId id : ids) sim.cancel(id);
  // Eager removal: the count drops to zero immediately, with no tombstones
  // waiting for the clock to pass them.
  EXPECT_EQ(sim.pending_count(), 0u);

  const std::size_t capacity_after_warmup = sim.event_store().node_capacity();
  const std::uint64_t slabs_after_warmup = sim.event_stats().slab_allocs;
  EXPECT_GE(capacity_after_warmup, kBatch);

  // Many more churn rounds: capacity and slab count must not move, and the
  // overflow heap must stay within a small factor of the live count.
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    ids.clear();
    for (std::size_t i = 0; i < kBatch; ++i) {
      const double delay =
          rng.uniform() < 0.3 ? 3600.0 * 24 * (1 + double(rng.uniform_int(30)))
                              : 0.5 + double(rng.uniform_int(64));
      ids.push_back(sim.schedule(SimTime::seconds(delay), [] {}));
    }
    for (EventId id : ids) sim.cancel(id);
    ASSERT_EQ(sim.pending_count(), 0u);
    ASSERT_LE(sim.event_store().overflow_resident(),
              2 * sim.pending_count() + 64);
  }
  EXPECT_EQ(sim.event_store().node_capacity(), capacity_after_warmup);
  EXPECT_EQ(sim.event_stats().slab_allocs, slabs_after_warmup);

  // Stale cancels remain harmless no-ops.
  sim.cancel(0);
  sim.cancel(ids.front());
  sim.cancel(0xdeadbeefdeadbeefull);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(TimerWheelTest, SteadyStateSchedulingAllocatesNothing) {
  Simulator sim;

  // 256 self-rescheduling timers plus per-tick schedule/cancel churn: the
  // working set of live events is constant, so after warmup the slab pool
  // must never grow again. This is the zero-heap-allocation-per-event
  // assertion, made via pool statistics.
  constexpr int kTimers = 256;
  struct Churn {
    Simulator* sim;
    SimTime period;
    std::uint64_t ticks = 0;
    EventId cancelled_probe = 0;
    void arm() {
      // Each tick also schedules a probe and cancels it — exercising the
      // cancel path's node recycling inside the steady loop.
      cancelled_probe = sim->schedule(SimTime::millis(250), [] {});
      sim->cancel(cancelled_probe);
      ++ticks;
      sim->schedule(period, [this] { arm(); });
    }
  };
  std::array<Churn, kTimers> churns;
  for (int i = 0; i < kTimers; ++i) {
    churns[i] = Churn{&sim, SimTime::micros(50 + i % 100)};
    churns[i].arm();
  }

  sim.run_until(SimTime::seconds(1.0));
  const std::uint64_t warm_slabs = sim.event_stats().slab_allocs;
  const std::size_t warm_capacity = sim.event_store().node_capacity();
  const std::uint64_t warm_executed = sim.executed_count();

  sim.run_until(SimTime::seconds(3.0));
  EXPECT_GT(sim.executed_count(), warm_executed + 1'000'000);
  EXPECT_EQ(sim.event_stats().slab_allocs, warm_slabs);
  EXPECT_EQ(sim.event_store().node_capacity(), warm_capacity);
}

// ---------------------------------------------------------------------------
// Determinism: a schedule/cancel-heavy randomized run is bit-reproducible.
// ---------------------------------------------------------------------------

std::string churn_digest(std::uint64_t seed) {
  Simulator sim;
  Rng rng(seed);
  Md5 md5;
  std::vector<EventId> live;
  // Schedule budget: each executed event spawns children only while budget
  // remains, so the run is schedule/cancel-heavy but strictly bounded.
  std::uint64_t budget = 50'000;

  struct Tick {
    Simulator* sim;
    Rng* rng;
    Md5* md5;
    std::vector<EventId>* live;
    std::uint64_t* budget;
    std::uint64_t label;
    void operator()() const {
      // Record execution (virtual time + label) into the digest.
      const std::int64_t t = sim->now().ns();
      md5->update(std::string_view(reinterpret_cast<const char*>(&t),
                                   sizeof(t)));
      md5->update(std::string_view(reinterpret_cast<const char*>(&label),
                                   sizeof(label)));
      // Reschedule-heavy behavior from inside events.
      for (int i = 0; i < 3 && *budget > 0; ++i) {
        --*budget;
        const std::int64_t delay = random_delay_ns(*rng) % 2'000'000'000;
        live->push_back(sim->schedule(
            SimTime::nanos(delay),
            Tick{sim, rng, md5, live, budget,
                 label * 31 + std::uint64_t(i)}));
      }
      while (!live->empty() && rng->uniform() < 0.5) {
        const std::size_t victim = rng->uniform_int(live->size());
        sim->cancel((*live)[victim]);
        live->erase(live->begin() + static_cast<std::ptrdiff_t>(victim));
      }
    }
  };

  for (std::uint64_t i = 0; i < 64; ++i) {
    live.push_back(
        sim.schedule(SimTime::nanos(random_delay_ns(rng) % 1000),
                     Tick{&sim, &rng, &md5, &live, &budget, i}));
  }
  sim.run_until(SimTime::seconds(2.0));
  const auto digest = md5.digest();
  return to_hex(digest);
}

TEST(TimerWheelTest, ChurnHeavyScheduleIsBitReproducible) {
  for (std::uint64_t seed : {1ull, 0x5151ull, 0xabcdef99ull}) {
    SCOPED_TRACE(seed);
    const std::string first = churn_digest(seed);
    const std::string second = churn_digest(seed);
    EXPECT_EQ(first, second);
    EXPECT_NE(first, churn_digest(seed + 1));
  }
}

// ---------------------------------------------------------------------------
// Safe-window edge cases: the parallel engine (sim/parallel_sim) drives the
// wheel through run_window() slices with keyed cross-shard inserts between
// them. These pin the wheel behaviors that makes correct: rescheduling an
// event across a window boundary, key-order ties between overflow-heap and
// in-wheel events at one tick, and cursor rewind after a window barrier.
// ---------------------------------------------------------------------------

TEST(TimerWheelTest, RescheduleAcrossWindowBoundaryFiresOnceAtNewTime) {
  Simulator sim;
  std::vector<std::int64_t> fired;
  EventId id =
      sim.schedule_at(SimTime::micros(50),
                      [&fired, &sim] { fired.push_back(sim.now().ns()); });
  sim.schedule_at(SimTime::micros(40), [&] {
    // Move the 50us event into the NEXT safe window [100us, 200us).
    id = sim.reschedule(id, SimTime::micros(110),
                        [&fired, &sim] { fired.push_back(sim.now().ns()); });
  });

  sim.run_window(SimTime::micros(100));
  EXPECT_TRUE(fired.empty());  // the original 50us firing must be gone
  sim.run_window(SimTime::micros(200));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], SimTime::micros(150).ns());
}

TEST(TimerWheelTest, OverflowAndWheelEventsTieOnSameTickByKey) {
  TimerWheel wheel;
  // T sits beyond the 2^48 ns wheel horizon, so the first insert lands in
  // the overflow heap. Its key says locus 2.
  const SimTime t = SimTime::nanos((1ll << 48) + 12345);
  wheel.insert_keyed(t, make_order_key(2, 1), /*locus=*/2, EventAction([] {}));
  EXPECT_EQ(wheel.stats().overflow_inserts, 1u);

  // Drain an intermediate event to advance the cursor; the wheel then
  // jumps to the overflow front and pulls T into the wheel proper.
  wheel.insert_keyed(SimTime::seconds(1.0), make_order_key(3, 1), 3,
                     EventAction([] {}));
  SimTime at;
  std::uint32_t locus;
  EventAction action;
  ASSERT_TRUE(wheel.pop_until(SimTime::max(), &at, &locus, &action));
  EXPECT_EQ(locus, 3u);

  // A direct insert at exactly T with a smaller key (locus 1) must pop
  // BEFORE the overflow-travelled event: same tick, key order decides.
  wheel.insert_keyed(t, make_order_key(1, 7), /*locus=*/1, EventAction([] {}));
  ASSERT_TRUE(wheel.pop_until(SimTime::max(), &at, &locus, &action));
  EXPECT_EQ(at, t);
  EXPECT_EQ(locus, 1u);
  ASSERT_TRUE(wheel.pop_until(SimTime::max(), &at, &locus, &action));
  EXPECT_EQ(at, t);
  EXPECT_EQ(locus, 2u);
  EXPECT_FALSE(wheel.pop_until(SimTime::max(), &at, &locus, &action));
}

TEST(TimerWheelTest, RewindAfterWindowBarrierKeepsTimeOrder) {
  Simulator sim;
  std::vector<std::int64_t> fired;
  const auto record = [&fired, &sim] { fired.push_back(sim.now().ns()); };

  // Only a far-future event exists: running a window peeks toward it and
  // cascades the cursor well past the window end.
  sim.schedule_at(SimTime::millis(10), record);
  sim.run_window(SimTime::micros(100));
  EXPECT_TRUE(fired.empty());

  // A barrier-time insert lands between the window end and the cursor —
  // exactly what a cross-shard mailbox drain does — forcing a rewind.
  sim.insert_keyed(SimTime::micros(150), make_order_key(1, 1), 1,
                   EventAction(record));
  sim.run_window(SimTime::millis(1));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], SimTime::micros(150).ns());
  EXPECT_GE(sim.event_stats().rewinds, 1u);

  sim.run_until(SimTime::millis(20));
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], SimTime::millis(10).ns());
}

// ---------------------------------------------------------------------------
// Message pool: the copy-on-forward path recycles its shared blocks.
// ---------------------------------------------------------------------------

TEST(MessagePoolTest, ForwardPathReusesSharedBlocks) {
  using namespace svk::sip;
  Message base = Message::request(
      Method::kInvite, Uri("bob", "biloxi.example.com"),
      NameAddr{"", Uri("alice", "client.test"), "tag-a"},
      NameAddr{"", Uri("bob", "biloxi.example.com"), ""}, "pool-call-1",
      CSeq{1, Method::kInvite});
  base.push_via(Via{"SIP/2.0/UDP", "client.test", "z9hG4bK-pool-0"});
  MessagePtr shared = std::move(base).finish();

  // A sliding window of in-flight messages, as the proxy forward path
  // creates: each new hop's finish() is paired with an old hop's release.
  std::deque<MessagePtr> window;
  constexpr int kWarmup = 512;
  constexpr int kMeasured = 20'000;

  const auto& stats = message_pool_stats();
  std::uint64_t fresh_after_warmup = 0;
  std::uint64_t reuses_after_warmup = 0;

  for (int i = 0; i < kWarmup + kMeasured; ++i) {
    Message fwd = clone(*shared);
    fwd.push_via(Via{"SIP/2.0/UDP", "proxy0.test",
                     "z9hG4bK-pool-" + std::to_string(i)});
    fwd.decrement_max_forwards();
    window.push_back(std::move(fwd).finish());
    if (window.size() > 64) window.pop_front();
    if (i == kWarmup - 1) {
      fresh_after_warmup = stats.fresh_allocs;
      reuses_after_warmup = stats.reuses;
    }
  }

  // Steady state: every finish() was served from the freelist.
  EXPECT_EQ(stats.fresh_allocs, fresh_after_warmup);
  EXPECT_GE(stats.reuses, reuses_after_warmup + kMeasured);
}

// ---------------------------------------------------------------------------
// Interning: hot Via strings stay bounded and compare correctly.
// ---------------------------------------------------------------------------

TEST(InternTest, RepeatedViaStringsDoNotGrowTheTable) {
  using namespace svk::sip;
  const std::size_t before = intern_table_size();
  for (int i = 0; i < 10'000; ++i) {
    const Via via{"SIP/2.0/UDP", "intern-host.test",
                  "z9hG4bK-" + std::to_string(i)};
    ASSERT_EQ(via.sent_by, "intern-host.test");
  }
  // One new host (plus possibly the protocol on the very first run): the
  // 10k distinct branches must not intern anything.
  EXPECT_LE(intern_table_size(), before + 2);

  const Token a{"intern-host.test"};
  const Token b{std::string_view("intern-host.test")};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, std::string_view("intern-host.test"));
  EXPECT_EQ(a.str(), "intern-host.test");
}

}  // namespace
}  // namespace svk::sim
