// RFC 3261 section-17 conformance tests for the transaction layer: timer
// schedules, retransmission generation/absorption, state transitions and
// manager matching.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sip/branch.hpp"
#include "sip/message.hpp"
#include "txn/manager.hpp"
#include "txn/transaction.hpp"

namespace svk::txn {
namespace {

using sip::CSeq;
using sip::Message;
using sip::MessagePtr;
using sip::Method;
using sip::NameAddr;
using sip::Uri;
using sip::Via;

MessagePtr make_request(Method method, const std::string& branch = "z9hG4bK-1",
                        const std::string& call_id = "call-1") {
  Message msg = Message::request(
      method, Uri("bob", "example.com"),
      NameAddr{"", Uri("alice", "client.com"), "tag-a"},
      NameAddr{"", Uri("bob", "example.com"), ""}, call_id,
      CSeq{1, method});
  msg.push_via(Via{"SIP/2.0/UDP", "client.com", branch});
  return std::move(msg).finish();
}

MessagePtr make_response(const Message& req, int code) {
  return Message::response(req, code).finish();
}

/// Collects everything a transaction puts on the wire.
struct WireLog {
  std::vector<MessagePtr> sent;
  SendFn sender() {
    return [this](const MessagePtr& m) { sent.push_back(m); };
  }
  [[nodiscard]] int count_method(Method m) const {
    int n = 0;
    for (const auto& msg : sent) {
      if (msg->is_request() && msg->method() == m) ++n;
    }
    return n;
  }
  [[nodiscard]] int count_status(int code) const {
    int n = 0;
    for (const auto& msg : sent) {
      if (msg->is_response() && msg->status_code() == code) ++n;
    }
    return n;
  }
};

// ---------------------------------------------------------------------------
// INVITE client transaction (17.1.1)
// ---------------------------------------------------------------------------

class InviteClientTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  TimerConfig timers;
  WireLog wire;
  int timeouts = 0;
  int terminated = 0;
  std::vector<int> responses;

  std::unique_ptr<ClientTransaction> make() {
    ClientCallbacks callbacks;
    callbacks.on_response = [this](const MessagePtr& m) {
      responses.push_back(m->status_code());
    };
    callbacks.on_timeout = [this] { ++timeouts; };
    callbacks.on_terminated = [this] { ++terminated; };
    auto txn = std::make_unique<ClientTransaction>(
        sim, timers, /*is_invite=*/true, make_request(Method::kInvite),
        wire.sender(), std::move(callbacks));
    txn->start();
    return txn;
  }
};

TEST_F(InviteClientTest, SendsImmediately) {
  auto txn = make();
  EXPECT_EQ(wire.count_method(Method::kInvite), 1);
  EXPECT_EQ(txn->state(), ClientState::kCalling);
}

TEST_F(InviteClientTest, TimerADoublesRetransmissions) {
  auto txn = make();
  // Retransmits at 0.5, 1.5, 3.5, 7.5, 15.5, 31.5s (then timer B at 32s).
  sim.run_until(SimTime::millis(400));
  EXPECT_EQ(wire.count_method(Method::kInvite), 1);
  sim.run_until(SimTime::millis(600));
  EXPECT_EQ(wire.count_method(Method::kInvite), 2);
  sim.run_until(SimTime::millis(1600));
  EXPECT_EQ(wire.count_method(Method::kInvite), 3);
  sim.run_until(SimTime::millis(3600));
  EXPECT_EQ(wire.count_method(Method::kInvite), 4);
  EXPECT_EQ(txn->retransmit_count(), 3);
}

TEST_F(InviteClientTest, TimerBTimesOut) {
  auto txn = make();
  sim.run_until(SimTime::seconds(40.0));
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(terminated, 1);
  EXPECT_EQ(txn->state(), ClientState::kTerminated);
  // 64*T1 = 32s window: initial + retransmits at 0.5,1.5,3.5,7.5,15.5,31.5.
  EXPECT_EQ(wire.count_method(Method::kInvite), 7);
}

TEST_F(InviteClientTest, ProvisionalStopsRetransmission) {
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 100));
  EXPECT_EQ(txn->state(), ClientState::kProceeding);
  sim.run_until(SimTime::seconds(40.0));
  EXPECT_EQ(wire.count_method(Method::kInvite), 1);  // no retransmits
  EXPECT_EQ(timeouts, 0);                            // timer B cancelled
  EXPECT_EQ(responses, (std::vector<int>{100}));
}

TEST_F(InviteClientTest, TimerCTimesOutStuckProceeding) {
  // RFC 3261 16.6: a provisional cancels timer B, but the transaction may
  // not wait in Proceeding forever — timer C bounds it. A peer that sends
  // 180 and then crashes must not leak the transaction.
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 180));
  EXPECT_EQ(txn->state(), ClientState::kProceeding);
  sim.run_until(SimTime::seconds(179.0));
  EXPECT_EQ(timeouts, 0);
  sim.run_until(SimTime::seconds(181.0));
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(terminated, 1);
  EXPECT_EQ(txn->state(), ClientState::kTerminated);
}

TEST_F(InviteClientTest, TimerCRefreshesOnEveryProvisional) {
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 100));
  sim.run_until(SimTime::seconds(100.0));
  txn->receive_response(make_response(*txn->request(), 180));  // refresh
  sim.run_until(SimTime::seconds(250.0));
  EXPECT_EQ(timeouts, 0);  // clock restarted at 100s; fires at 280s
  sim.run_until(SimTime::seconds(281.0));
  EXPECT_EQ(timeouts, 1);
}

TEST_F(InviteClientTest, TimerCRefreshesAcrossManyProvisionals) {
  // A session-progress stream (media gateways send 183 every few seconds)
  // must never let timer C fire while provisionals keep arriving, and the
  // refreshes must reschedule the same timer rather than accumulate armed
  // events in the simulator.
  auto txn = make();
  for (int i = 0; i < 12; ++i) {
    txn->receive_response(make_response(*txn->request(), 183));
    sim.run_until(SimTime::seconds(20.0 * (i + 1)));
    EXPECT_EQ(timeouts, 0);
  }
  // Last refresh at 220s; timer C (180s) fires at 400s, exactly once.
  sim.run_until(SimTime::seconds(399.0));
  EXPECT_EQ(timeouts, 0);
  sim.run_until(SimTime::seconds(401.0));
  EXPECT_EQ(timeouts, 1);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST_F(InviteClientTest, DuplicateFinalAbsorbedWithoutTimerChurn) {
  // Retransmitted non-2xx finals in Completed are re-ACKed but must not
  // touch timer D: the transaction still terminates 32s after the FIRST
  // final, and draining leaves no armed events behind.
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 486));
  sim.run_until(SimTime::seconds(10.0));
  txn->receive_response(make_response(*txn->request(), 486));
  EXPECT_EQ(wire.count_method(Method::kAck), 2);
  EXPECT_EQ(responses, (std::vector<int>{486}));
  sim.run_until(SimTime::seconds(31.0));
  EXPECT_EQ(txn->state(), ClientState::kCompleted);  // D not restarted early
  sim.run_until(SimTime::seconds(33.0));
  EXPECT_EQ(txn->state(), ClientState::kTerminated);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST_F(InviteClientTest, FinalResponseCancelsTimerC) {
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 180));
  txn->receive_response(make_response(*txn->request(), 200));
  EXPECT_EQ(txn->state(), ClientState::kTerminated);
  sim.run_until(SimTime::seconds(200.0));
  EXPECT_EQ(timeouts, 0);
}

TEST_F(InviteClientTest, TwoHundredTerminatesImmediately) {
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 200));
  EXPECT_EQ(txn->state(), ClientState::kTerminated);
  EXPECT_EQ(terminated, 1);
  // No ACK from the transaction for 2xx (TU's responsibility).
  EXPECT_EQ(wire.count_method(Method::kAck), 0);
}

TEST_F(InviteClientTest, NonTwoHundredAcksAndLingers) {
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 486));
  EXPECT_EQ(txn->state(), ClientState::kCompleted);
  EXPECT_EQ(wire.count_method(Method::kAck), 1);
  EXPECT_EQ(responses, (std::vector<int>{486}));

  // A retransmitted final is absorbed and re-ACKed, not passed up.
  txn->receive_response(make_response(*txn->request(), 486));
  EXPECT_EQ(wire.count_method(Method::kAck), 2);
  EXPECT_EQ(responses, (std::vector<int>{486}));

  // Timer D fires at 32s.
  sim.run_until(SimTime::seconds(33.0));
  EXPECT_EQ(txn->state(), ClientState::kTerminated);
}

TEST_F(InviteClientTest, AckForNon2xxCopiesBranch) {
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 404));
  ASSERT_EQ(wire.count_method(Method::kAck), 1);
  const MessagePtr& ack = wire.sent.back();
  EXPECT_EQ(ack->top_via().branch, txn->request()->top_via().branch);
  EXPECT_EQ(ack->cseq().method, Method::kAck);
  EXPECT_EQ(ack->cseq().seq, txn->request()->cseq().seq);
}

TEST_F(InviteClientTest, ProvisionalThen200) {
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 180));
  txn->receive_response(make_response(*txn->request(), 200));
  EXPECT_EQ(responses, (std::vector<int>{180, 200}));
  EXPECT_EQ(txn->state(), ClientState::kTerminated);
}

// ---------------------------------------------------------------------------
// Non-INVITE client transaction (17.1.2)
// ---------------------------------------------------------------------------

class NonInviteClientTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  TimerConfig timers;
  WireLog wire;
  int timeouts = 0;
  std::vector<int> responses;

  std::unique_ptr<ClientTransaction> make() {
    ClientCallbacks callbacks;
    callbacks.on_response = [this](const MessagePtr& m) {
      responses.push_back(m->status_code());
    };
    callbacks.on_timeout = [this] { ++timeouts; };
    auto txn = std::make_unique<ClientTransaction>(
        sim, timers, /*is_invite=*/false, make_request(Method::kBye),
        wire.sender(), std::move(callbacks));
    txn->start();
    return txn;
  }
};

TEST_F(NonInviteClientTest, TimerECapsAtT2) {
  auto txn = make();
  // E fires at 0.5, 1.5, 3.5, 7.5, then every 4s (T2 cap).
  sim.run_until(SimTime::seconds(11.6));
  // Sends: t=0, .5, 1.5, 3.5, 7.5, 11.5 -> 6 transmissions.
  EXPECT_EQ(wire.count_method(Method::kBye), 6);
}

TEST_F(NonInviteClientTest, TimerFTimesOutAt64T1) {
  auto txn = make();
  sim.run_until(SimTime::seconds(33.0));
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(txn->state(), ClientState::kTerminated);
}

TEST_F(NonInviteClientTest, FinalEntersCompletedThenTimerK) {
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 200));
  EXPECT_EQ(txn->state(), ClientState::kCompleted);
  EXPECT_EQ(responses, (std::vector<int>{200}));
  // Timer K = T4 = 5s.
  sim.run_until(SimTime::seconds(5.5));
  EXPECT_EQ(txn->state(), ClientState::kTerminated);
}

TEST_F(NonInviteClientTest, ProvisionalKeepsRetransmittingAtT2) {
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 100));
  EXPECT_EQ(txn->state(), ClientState::kProceeding);
  const int before = wire.count_method(Method::kBye);
  sim.run_until(SimTime::seconds(9.0));
  EXPECT_GT(wire.count_method(Method::kBye), before);
  // Timeouts still possible in Proceeding for non-INVITE.
  sim.run_until(SimTime::seconds(33.0));
  EXPECT_EQ(timeouts, 1);
}

TEST_F(NonInviteClientTest, RetransmittedFinalAbsorbed) {
  auto txn = make();
  txn->receive_response(make_response(*txn->request(), 200));
  txn->receive_response(make_response(*txn->request(), 200));
  EXPECT_EQ(responses, (std::vector<int>{200}));
}

// ---------------------------------------------------------------------------
// INVITE server transaction (17.2.1)
// ---------------------------------------------------------------------------

class InviteServerTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  TimerConfig timers;
  WireLog wire;
  int acks = 0;
  int timeouts = 0;

  MessagePtr invite = make_request(Method::kInvite);

  std::unique_ptr<ServerTransaction> make() {
    ServerCallbacks callbacks;
    callbacks.on_ack = [this](const MessagePtr&) { ++acks; };
    callbacks.on_timeout = [this] { ++timeouts; };
    return std::make_unique<ServerTransaction>(
        sim, timers, /*is_invite=*/true, invite, wire.sender(),
        std::move(callbacks));
  }

  MessagePtr ack_for(const MessagePtr& inv) {
    Message ack = Message::request(
        Method::kAck, inv->request_uri(), inv->from(), inv->to(),
        inv->call_id(), CSeq{1, Method::kAck});
    ack.push_via(inv->top_via());
    return std::move(ack).finish();
  }
};

TEST_F(InviteServerTest, StartsProceeding) {
  auto txn = make();
  EXPECT_EQ(txn->state(), ServerState::kProceeding);
}

TEST_F(InviteServerTest, RetransmittedInviteReplaysProvisional) {
  auto txn = make();
  txn->respond(make_response(*invite, 100));
  EXPECT_EQ(wire.count_status(100), 1);
  txn->receive_request(invite);
  EXPECT_EQ(wire.count_status(100), 2);
  EXPECT_EQ(txn->absorbed_count(), 1);
}

TEST_F(InviteServerTest, TwoHundredTerminatesImmediately) {
  auto txn = make();
  txn->respond(make_response(*invite, 200));
  EXPECT_EQ(txn->state(), ServerState::kTerminated);
  EXPECT_EQ(wire.count_status(200), 1);
  // No retransmissions from the transaction (UAS core owns 2xx rtx).
  sim.run_until(SimTime::seconds(10.0));
  EXPECT_EQ(wire.count_status(200), 1);
}

TEST_F(InviteServerTest, Non2xxRetransmitsOnTimerG) {
  auto txn = make();
  txn->respond(make_response(*invite, 486));
  EXPECT_EQ(txn->state(), ServerState::kCompleted);
  EXPECT_EQ(wire.count_status(486), 1);
  // G fires at 0.5, 1.5, 3.5, 7.5... (doubling, capped at T2).
  sim.run_until(SimTime::millis(1600));
  EXPECT_EQ(wire.count_status(486), 3);
}

TEST_F(InviteServerTest, AckStopsRetransmissionAndConfirms) {
  auto txn = make();
  txn->respond(make_response(*invite, 486));
  sim.run_until(SimTime::millis(600));
  const int sent_so_far = wire.count_status(486);
  txn->receive_request(ack_for(invite));
  EXPECT_EQ(txn->state(), ServerState::kConfirmed);
  EXPECT_EQ(acks, 1);
  sim.run_until(SimTime::seconds(3.0));
  EXPECT_EQ(wire.count_status(486), sent_so_far);  // G stopped
  // Timer I (T4=5s) then terminates.
  sim.run_until(SimTime::seconds(6.0));
  EXPECT_EQ(txn->state(), ServerState::kTerminated);
}

TEST_F(InviteServerTest, DuplicateAckAbsorbedInConfirmed) {
  auto txn = make();
  txn->respond(make_response(*invite, 486));
  txn->receive_request(ack_for(invite));
  txn->receive_request(ack_for(invite));
  EXPECT_EQ(acks, 1);
}

TEST_F(InviteServerTest, DuplicateFinalDoesNotExtendTimerH) {
  // The TU answering twice (e.g. a forked context picking a second best
  // response after the first was already sent) must be a no-op: the wire
  // sees one status line, timer H still fires 64*T1 after the FIRST final
  // (not the second), and no orphaned timer event survives the drain.
  auto txn = make();
  txn->respond(make_response(*invite, 486));
  sim.run_until(SimTime::seconds(10.0));
  txn->respond(make_response(*invite, 503));  // late second final: ignored
  EXPECT_EQ(wire.count_status(503), 0);
  EXPECT_EQ(txn->state(), ServerState::kCompleted);
  sim.run_until(SimTime::seconds(31.9));
  EXPECT_EQ(timeouts, 0);
  sim.run_until(SimTime::seconds(32.1));  // H at 32s, not 42s
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(txn->state(), ServerState::kTerminated);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST_F(InviteServerTest, ProvisionalAfterFinalIgnored) {
  // A straggling 180 arriving at the TU after the final must not drag the
  // transaction back to Proceeding: timer G would then retransmit the
  // provisional as "last response" and timers G/H would be stranded armed.
  auto txn = make();
  txn->respond(make_response(*invite, 486));
  txn->respond(make_response(*invite, 180));  // late provisional: ignored
  EXPECT_EQ(wire.count_status(180), 0);
  EXPECT_EQ(txn->state(), ServerState::kCompleted);
  // Timer G keeps retransmitting the *final*, not the provisional.
  sim.run_until(SimTime::millis(1600));
  EXPECT_EQ(wire.count_status(486), 3);
  EXPECT_EQ(wire.count_status(180), 0);
  sim.run();
  EXPECT_EQ(txn->state(), ServerState::kTerminated);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST_F(InviteServerTest, AckAbsorptionInConfirmedLeavesOnlyTimerI) {
  // Every duplicate ACK in Confirmed is absorbed without touching timer I;
  // the transaction still terminates at T4 and drains clean.
  auto txn = make();
  txn->respond(make_response(*invite, 486));
  txn->receive_request(ack_for(invite));
  EXPECT_EQ(txn->state(), ServerState::kConfirmed);
  for (int i = 0; i < 5; ++i) {
    sim.run_until(SimTime::millis(200 * (i + 1)));
    txn->receive_request(ack_for(invite));
  }
  EXPECT_EQ(acks, 1);
  EXPECT_EQ(txn->state(), ServerState::kConfirmed);
  sim.run_until(SimTime::seconds(6.0));  // I = T4 = 5s after first ACK
  EXPECT_EQ(txn->state(), ServerState::kTerminated);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST_F(InviteServerTest, TimerHTimesOutWithoutAck) {
  auto txn = make();
  txn->respond(make_response(*invite, 486));
  sim.run_until(SimTime::seconds(33.0));
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(txn->state(), ServerState::kTerminated);
}

// ---------------------------------------------------------------------------
// Non-INVITE server transaction (17.2.2)
// ---------------------------------------------------------------------------

class NonInviteServerTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  TimerConfig timers;
  WireLog wire;
  MessagePtr bye = make_request(Method::kBye);

  std::unique_ptr<ServerTransaction> make() {
    return std::make_unique<ServerTransaction>(
        sim, timers, /*is_invite=*/false, bye, wire.sender(),
        ServerCallbacks{});
  }
};

TEST_F(NonInviteServerTest, StartsTrying) {
  auto txn = make();
  EXPECT_EQ(txn->state(), ServerState::kTrying);
}

TEST_F(NonInviteServerTest, RetransmissionInTryingAbsorbedSilently) {
  auto txn = make();
  txn->receive_request(bye);
  EXPECT_EQ(txn->absorbed_count(), 1);
  EXPECT_TRUE(wire.sent.empty());  // nothing to replay yet
}

TEST_F(NonInviteServerTest, RetransmissionInCompletedReplaysFinal) {
  auto txn = make();
  txn->respond(make_response(*bye, 200));
  EXPECT_EQ(txn->state(), ServerState::kCompleted);
  txn->receive_request(bye);
  EXPECT_EQ(wire.count_status(200), 2);
}

TEST_F(NonInviteServerTest, TimerJTerminates) {
  auto txn = make();
  txn->respond(make_response(*bye, 200));
  sim.run_until(SimTime::seconds(33.0));
  EXPECT_EQ(txn->state(), ServerState::kTerminated);
}

TEST_F(NonInviteServerTest, DuplicateFinalDoesNotExtendTimerJ) {
  // Second final from the TU is dropped: one 200 on the wire, timer J still
  // fires 64*T1 after the first final, and the drain leaves no events.
  auto txn = make();
  txn->respond(make_response(*bye, 200));
  sim.run_until(SimTime::seconds(10.0));
  txn->respond(make_response(*bye, 503));  // ignored
  EXPECT_EQ(wire.count_status(503), 0);
  EXPECT_EQ(wire.count_status(200), 1);
  sim.run_until(SimTime::seconds(31.9));
  EXPECT_EQ(txn->state(), ServerState::kCompleted);  // J at 32s, not 42s
  sim.run_until(SimTime::seconds(32.1));
  EXPECT_EQ(txn->state(), ServerState::kTerminated);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST_F(NonInviteServerTest, ProvisionalAfterFinalIgnored) {
  auto txn = make();
  txn->respond(make_response(*bye, 200));
  txn->respond(make_response(*bye, 100));  // late provisional: ignored
  EXPECT_EQ(wire.count_status(100), 0);
  EXPECT_EQ(txn->state(), ServerState::kCompleted);
  // Retransmitted request still replays the final, not the provisional.
  txn->receive_request(bye);
  EXPECT_EQ(wire.count_status(200), 2);
  EXPECT_EQ(wire.count_status(100), 0);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST_F(NonInviteServerTest, NoTimerGRetransmissions) {
  auto txn = make();
  txn->respond(make_response(*bye, 200));
  sim.run_until(SimTime::seconds(20.0));
  EXPECT_EQ(wire.count_status(200), 1);
}

// ---------------------------------------------------------------------------
// TransactionManager
// ---------------------------------------------------------------------------

class ManagerTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  TimerConfig timers;
  TransactionManager manager{sim, timers};
  WireLog wire;
};

TEST_F(ManagerTest, NewRequestReportsNewRequest) {
  EXPECT_EQ(manager.dispatch(make_request(Method::kInvite)),
            Dispatch::kNewRequest);
}

TEST_F(ManagerTest, RetransmissionHitsServerTransaction) {
  auto invite = make_request(Method::kInvite);
  manager.create_server(invite, wire.sender(), ServerCallbacks{});
  EXPECT_EQ(manager.dispatch(invite), Dispatch::kHandledByServerTxn);
  EXPECT_EQ(manager.active_count(), 1u);
}

TEST_F(ManagerTest, ResponseRoutedToClientTransaction) {
  auto invite = make_request(Method::kInvite);
  std::vector<int> codes;
  ClientCallbacks callbacks;
  callbacks.on_response = [&](const MessagePtr& m) {
    codes.push_back(m->status_code());
  };
  manager.create_client(invite, wire.sender(), std::move(callbacks));
  EXPECT_EQ(manager.dispatch(make_response(*invite, 180)),
            Dispatch::kHandledByClientTxn);
  EXPECT_EQ(codes, (std::vector<int>{180}));
}

TEST_F(ManagerTest, StrayResponseReported) {
  EXPECT_EQ(manager.dispatch(make_response(*make_request(Method::kInvite), 200)),
            Dispatch::kStrayResponse);
}

TEST_F(ManagerTest, TerminatedTransactionsAreRemoved) {
  auto invite = make_request(Method::kInvite);
  manager.create_client(invite, wire.sender(), ClientCallbacks{});
  EXPECT_EQ(manager.active_count(), 1u);
  // 2xx terminates the INVITE client transaction; removal is scheduled.
  manager.dispatch(make_response(*invite, 200));
  sim.run();
  EXPECT_EQ(manager.active_count(), 0u);
}

TEST_F(ManagerTest, AckAfter2xxIsNewRequest) {
  auto invite = make_request(Method::kInvite);
  manager.create_server(invite, wire.sender(), ServerCallbacks{});
  auto* server = manager.find_server(*invite);
  ASSERT_NE(server, nullptr);
  server->respond(make_response(*invite, 200));
  sim.run();  // removal event
  Message ack = Message::request(
      Method::kAck, invite->request_uri(), invite->from(), invite->to(),
      invite->call_id(), CSeq{1, Method::kAck});
  ack.push_via(invite->top_via());
  EXPECT_EQ(manager.dispatch(std::move(ack).finish()),
            Dispatch::kNewRequest);
}

TEST_F(ManagerTest, DistinctBranchesAreDistinctTransactions) {
  manager.create_server(make_request(Method::kInvite, "z9hG4bK-x"),
                        wire.sender(), ServerCallbacks{});
  manager.create_server(make_request(Method::kInvite, "z9hG4bK-y"),
                        wire.sender(), ServerCallbacks{});
  EXPECT_EQ(manager.active_count(), 2u);
  EXPECT_EQ(manager.created_count(), 2u);
}

TEST_F(ManagerTest, InviteAndByeSameDialogAreDistinctTransactions) {
  // Same call-id, different method/branch: separate transactions.
  manager.create_server(make_request(Method::kInvite, "z9hG4bK-i", "c1"),
                        wire.sender(), ServerCallbacks{});
  manager.create_server(make_request(Method::kBye, "z9hG4bK-b", "c1"),
                        wire.sender(), ServerCallbacks{});
  EXPECT_EQ(manager.active_count(), 2u);
}

// ---------------------------------------------------------------------------
// Peer-crash drain: when the far end dies mid-transaction, timers B/F/H
// must fire and the manager must end up empty after the simulator drains —
// the invariant the chaos harness checks after every node-crash schedule.
// ---------------------------------------------------------------------------

TEST_F(ManagerTest, CrashedPeerInviteClientDrainsViaTimerB) {
  auto invite = make_request(Method::kInvite);
  int timeouts = 0;
  ClientCallbacks callbacks;
  callbacks.on_timeout = [&] { ++timeouts; };
  manager.create_client(invite, wire.sender(), std::move(callbacks));
  EXPECT_EQ(manager.active_count(), 1u);
  sim.run();  // no response will ever arrive
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(manager.active_count(), 0u);
  EXPECT_EQ(sim.pending_count(), 0u);
  // Timer B fires at 64*T1 = 32s after the last retransmission schedule.
  EXPECT_GE(sim.now(), SimTime::seconds(32.0));
}

TEST_F(ManagerTest, CrashedPeerByeClientDrainsViaTimerF) {
  auto bye = make_request(Method::kBye);
  int timeouts = 0;
  ClientCallbacks callbacks;
  callbacks.on_timeout = [&] { ++timeouts; };
  manager.create_client(bye, wire.sender(), std::move(callbacks));
  sim.run();
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(manager.active_count(), 0u);
  EXPECT_GE(wire.count_method(Method::kBye), 2);  // timer E kept retrying
}

TEST_F(ManagerTest, CrashedPeerInviteServerDrainsViaTimerH) {
  auto invite = make_request(Method::kInvite);
  int timeouts = 0;
  ServerCallbacks callbacks;
  callbacks.on_timeout = [&] { ++timeouts; };
  manager.create_server(invite, wire.sender(), std::move(callbacks));
  auto* server = manager.find_server(*invite);
  ASSERT_NE(server, nullptr);
  server->respond(make_response(*invite, 486));
  sim.run();  // the ACK never comes: the upstream peer crashed
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(manager.active_count(), 0u);
}

TEST_F(ManagerTest, StatefulRelayDrainsWhenDownstreamCrashes) {
  // The proxy's stateful-relay wiring mid-INVITE: a server transaction
  // upstream and a client transaction toward a peer that just crashed.
  // Timer B answers 408 upstream, timer H then reaps the server leg; no
  // transaction and no simulator event may survive the drain.
  auto invite = make_request(Method::kInvite);
  manager.create_server(invite, wire.sender(), ServerCallbacks{});

  auto fwd = make_request(Method::kInvite, "z9hG4bK-fwd");
  ClientCallbacks callbacks;
  callbacks.on_timeout = [&] {
    if (auto* srv = manager.find_server(*invite)) {
      srv->respond(make_response(*invite, 408));
    }
  };
  manager.create_client(fwd, wire.sender(), std::move(callbacks));
  EXPECT_EQ(manager.active_count(), 2u);

  sim.run();
  // Timer G keeps retransmitting the 408 (the crashed-side ACK never
  // arrives) until timer H gives up; at least one went upstream.
  EXPECT_GE(wire.count_status(408), 1);
  EXPECT_EQ(manager.active_count(), 0u);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST_F(ManagerTest, UserTerminatedCallbackRuns) {
  auto invite = make_request(Method::kInvite);
  bool user_terminated = false;
  ClientCallbacks callbacks;
  callbacks.on_terminated = [&] { user_terminated = true; };
  manager.create_client(invite, wire.sender(), std::move(callbacks));
  manager.dispatch(make_response(*invite, 200));
  sim.run();
  EXPECT_TRUE(user_terminated);
}

}  // namespace
}  // namespace svk::txn
