// Direct tests of the user-agent layer: the UAS's 2xx retransmission
// machinery (RFC 3261 13.3.1.4), duplicate handling, and the UAC's
// response-path behaviours, driven by a scripted peer over the simulated
// network (no proxy in between).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "workload/testbed.hpp"
#include "workload/uac.hpp"
#include "workload/uas.hpp"

namespace svk::workload {
namespace {

using sip::CSeq;
using sip::Message;
using sip::MessagePtr;
using sip::Method;
using sip::NameAddr;
using sip::Uri;
using sip::Via;

/// Scripted peer: records everything, sends raw messages.
class Peer {
 public:
  Peer(TestBed& bed, const std::string& host)
      : bed_(bed), host_(host), addr_(bed.declare_host(host)) {
    bed_.network().attach(addr_, [this](Address, const MessagePtr& msg) {
      inbox_.push_back(msg);
    });
  }

  void send(Address to, const Message& msg) {
    bed_.network().send(addr_, to, sip::clone(msg).finish());
  }

  [[nodiscard]] Address address() const { return addr_; }
  [[nodiscard]] std::vector<MessagePtr>& inbox() { return inbox_; }
  [[nodiscard]] int count_status(int code) const {
    int n = 0;
    for (const auto& m : inbox_) {
      if (m->is_response() && m->status_code() == code) ++n;
    }
    return n;
  }

 private:
  TestBed& bed_;
  std::string host_;
  Address addr_;
  std::vector<MessagePtr> inbox_;
};

class UaFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    bed = std::make_unique<TestBed>(11);
    peer = std::make_unique<Peer>(*bed, "peer.test");
    UasConfig config;
    config.host = "uas.test";
    uas = &bed->add_uas(config);
  }

  Message make_invite(const std::string& call_id = "c1") {
    Message msg = Message::request(
        Method::kInvite, Uri("bob", "uas.test"),
        NameAddr{"", Uri("alice", "peer.test"), "tag-a"},
        NameAddr{"", Uri("bob", "uas.test"), ""}, call_id,
        CSeq{1, Method::kInvite});
    msg.push_via(Via{"SIP/2.0/UDP", "peer.test", "z9hG4bK-" + call_id});
    return msg;
  }

  Message make_ack(const Message& ok) {
    Message ack = Message::request(
        Method::kAck, Uri("bob", "uas.test"), ok.from(), ok.to(),
        ok.call_id(), CSeq{1, Method::kAck});
    ack.push_via(Via{"SIP/2.0/UDP", "peer.test", "z9hG4bK-ack"});
    return ack;
  }

  std::unique_ptr<TestBed> bed;
  std::unique_ptr<Peer> peer;
  Uas* uas = nullptr;
};

TEST_F(UaFixture, AnswersInviteWith180Then200) {
  peer->send(uas->config().address, make_invite());
  bed->sim().run_until(SimTime::millis(50));
  EXPECT_EQ(peer->count_status(180), 1);
  EXPECT_EQ(peer->count_status(200), 1);
  // 180 and 200 carry the same UAS tag.
  std::string tag_180, tag_200;
  for (const auto& m : peer->inbox()) {
    if (!m->is_response()) continue;
    if (m->status_code() == 180) tag_180 = m->to().tag;
    if (m->status_code() == 200) tag_200 = m->to().tag;
  }
  EXPECT_FALSE(tag_180.empty());
  EXPECT_EQ(tag_180, tag_200);
}

TEST_F(UaFixture, Retransmits200UntilAcked) {
  peer->send(uas->config().address, make_invite());
  // No ACK for 2.2 seconds: 200 retransmits at 0.5, 1.5 (doubling)...
  bed->sim().run_until(SimTime::seconds(2.2));
  EXPECT_GE(peer->count_status(200), 3);
  EXPECT_GE(uas->metrics().retransmitted_200, 2u);

  // ACK stops the retransmissions.
  MessagePtr ok;
  for (const auto& m : peer->inbox()) {
    if (m->is_response() && m->status_code() == 200) ok = m;
  }
  peer->send(uas->config().address, make_ack(*ok));
  bed->sim().run_until(SimTime::seconds(2.5));
  const int after_ack = peer->count_status(200);
  bed->sim().run_until(SimTime::seconds(10.0));
  EXPECT_EQ(peer->count_status(200), after_ack);
  EXPECT_EQ(uas->metrics().calls_established, 1u);
}

TEST_F(UaFixture, GivesUpOn200RetransmissionsAfter64T1) {
  peer->send(uas->config().address, make_invite());
  bed->sim().run_until(SimTime::seconds(40.0));  // > 32s deadline
  const int sent = peer->count_status(200);
  bed->sim().run_until(SimTime::seconds(60.0));
  EXPECT_EQ(peer->count_status(200), sent);  // stopped retrying
  EXPECT_EQ(uas->metrics().calls_established, 0u);  // never ACKed
}

TEST_F(UaFixture, DuplicateAckIsHarmless) {
  peer->send(uas->config().address, make_invite());
  bed->sim().run_until(SimTime::millis(50));
  MessagePtr ok;
  for (const auto& m : peer->inbox()) {
    if (m->is_response() && m->status_code() == 200) ok = m;
  }
  ASSERT_TRUE(ok);
  peer->send(uas->config().address, make_ack(*ok));
  peer->send(uas->config().address, make_ack(*ok));
  bed->sim().run_until(SimTime::millis(200));
  EXPECT_EQ(uas->metrics().calls_established, 1u);
}

TEST_F(UaFixture, RetransmittedInviteAfter200ReplaysThe200) {
  const Message invite = make_invite();
  peer->send(uas->config().address, invite);
  bed->sim().run_until(SimTime::millis(50));
  EXPECT_EQ(peer->count_status(200), 1);
  // Same INVITE again (the INVITE server transaction is gone after 2xx,
  // but the UAS core still waits for the ACK).
  peer->send(uas->config().address, invite);
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(peer->count_status(200), 2);
  EXPECT_EQ(uas->metrics().invites_received, 1u);  // not a new call
}

TEST_F(UaFixture, ByeForUnknownDialogStillAnswered) {
  Message bye = Message::request(
      Method::kBye, Uri("bob", "uas.test"),
      NameAddr{"", Uri("alice", "peer.test"), "tag-a"},
      NameAddr{"", Uri("bob", "uas.test"), "tag-b"}, "ghost",
      CSeq{2, Method::kBye});
  bye.push_via(Via{"SIP/2.0/UDP", "peer.test", "z9hG4bK-bye"});
  peer->send(uas->config().address, bye);
  bed->sim().run_until(SimTime::millis(50));
  // Our simple UAS answers any BYE with 200 (SIPp does the same).
  EXPECT_EQ(peer->count_status(200), 1);
}

TEST_F(UaFixture, AnswerDelayHoldsThe200) {
  UasConfig config;
  config.host = "slow.test";
  config.answer_delay = SimTime::seconds(1.0);
  Uas& slow = bed->add_uas(config);

  Message invite = make_invite("c-slow");
  invite.set_request_uri(Uri("bob", "slow.test"));
  peer->send(slow.config().address, invite);
  bed->sim().run_until(SimTime::millis(500));
  EXPECT_EQ(peer->count_status(180), 1);
  EXPECT_EQ(peer->count_status(200), 0);
  bed->sim().run_until(SimTime::millis(1200));
  EXPECT_EQ(peer->count_status(200), 1);
}

TEST_F(UaFixture, UacIgnoresStrayRequests) {
  UacConfig config;
  config.host = "uac.test";
  config.first_hop = peer->address();
  config.target_domain = "nowhere.test";
  config.call_rate_cps = 0.0;
  Uac& uac = bed->add_uac(std::move(config));
  // A request sent at a UAC must be ignored, not crash.
  peer->send(*bed->registry().resolve("uac.test"), make_invite("to-uac"));
  bed->sim().run_until(SimTime::millis(100));
  EXPECT_EQ(uac.metrics().calls_attempted, 0u);
}

}  // namespace
}  // namespace svk::workload
