// Workload-layer tests: UAC/UAS call flows through real proxies, metrics
// accounting, the measurement runner and saturation behaviour of a single
// calibrated node (scaled down for test speed).
#include <gtest/gtest.h>

#include <memory>

#include "workload/runner.hpp"
#include "workload/scenarios.hpp"
#include "workload/testbed.hpp"

namespace svk::workload {
namespace {

/// All saturation tests run on 1/100-scale nodes: T_SF ~ 103.6 cps,
/// T_SL ~ 123 cps, so a few simulated seconds suffice.
constexpr double kScale = 0.01;

ScenarioOptions scaled_options(PolicyKind policy) {
  ScenarioOptions options;
  options.policy = policy;
  options.capacity_scale = {kScale, kScale, kScale, kScale};
  return options;
}

// ---------------------------------------------------------------------------
// Basic call flow
// ---------------------------------------------------------------------------

TEST(CallFlowTest, CallsCompleteThroughStatefulProxy) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateful));
  auto bed = factory(10.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(5.0));

  EXPECT_GE(bed->total_attempted_calls(), 45u);
  // Everything offered completes at this trivial load.
  EXPECT_GE(bed->total_completed_calls(), bed->total_attempted_calls() - 4);

  std::uint64_t trying = 0;
  std::uint64_t failed = 0;
  for (const auto& uac : bed->uacs()) {
    trying += uac->metrics().trying_received;
    failed += uac->metrics().calls_failed;
  }
  // Stateful proxy: one 100 Trying per call (the paper's witness check).
  EXPECT_GE(trying, bed->total_attempted_calls() - 4);
  EXPECT_EQ(failed, 0u);
}

TEST(CallFlowTest, StatelessProxyGeneratesNoTrying) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateless));
  auto bed = factory(10.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(5.0));

  EXPECT_GE(bed->total_completed_calls(), bed->total_attempted_calls() - 4);
  for (const auto& uac : bed->uacs()) {
    EXPECT_EQ(uac->metrics().trying_received, 0u);
    // UAS's own 180/200 still arrive.
    EXPECT_GT(uac->metrics().ringing_received, 0u);
  }
}

TEST(CallFlowTest, UasMetricsConsistent) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateful));
  auto bed = factory(20.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(5.0));
  bed->stop_load();
  bed->sim().run_until(SimTime::seconds(8.0));

  std::uint64_t invites = 0, established = 0, completed = 0, byes = 0;
  for (const auto& uas : bed->uases()) {
    invites += uas->metrics().invites_received;
    established += uas->metrics().calls_established;
    completed += uas->metrics().calls_completed;
    byes += uas->metrics().byes_received;
  }
  EXPECT_EQ(invites, bed->total_attempted_calls());
  EXPECT_EQ(established, invites);  // every INVITE got its ACK
  EXPECT_EQ(completed, byes);
  EXPECT_EQ(completed, invites);    // every call was torn down
}

TEST(CallFlowTest, OpenCallsDrainAfterStop) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateful));
  auto bed = factory(50.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(2.0));
  bed->stop_load();
  bed->sim().run_until(SimTime::seconds(6.0));
  for (const auto& uac : bed->uacs()) {
    EXPECT_EQ(uac->open_calls(), 0u);
    EXPECT_EQ(uac->metrics().retransmissions, 0u);  // clean network
  }
}

TEST(CallFlowTest, HoldTimeDelaysBye) {
  TestBed bed(3);
  const Address proxy_addr = bed.declare_host("proxy0.example.net");
  proxy::RouteTable routes;
  routes.add_local("callee.example.net");
  proxy::ProxyConfig config;
  config.host = "proxy0.example.net";
  bed.add_proxy(std::move(config), std::move(routes),
                std::make_unique<proxy::AlwaysStateful>());
  bed.add_uas(UasConfig{"uas0.callee.example.net", Address{}, {}, {}});
  bed.register_users("callee.example.net", 2, {"uas0.callee.example.net"});

  UacConfig uac_config;
  uac_config.host = "uac0.client.net";
  uac_config.first_hop = proxy_addr;
  uac_config.target_domain = "callee.example.net";
  uac_config.call_rate_cps = 10.0;
  uac_config.hold_time = SimTime::seconds(2.0);
  Uac& uac = bed.add_uac(std::move(uac_config));

  uac.start();
  bed.sim().run_until(SimTime::seconds(1.5));
  // Calls established but BYEs still pending: calls stay open.
  EXPECT_GT(uac.open_calls(), 5u);
  EXPECT_EQ(uac.metrics().calls_completed, 0u);
  bed.sim().run_until(SimTime::seconds(4.0));
  EXPECT_GT(uac.metrics().calls_completed, 0u);
}

TEST(CallFlowTest, PoissonArrivalsComplete) {
  ScenarioOptions options = scaled_options(PolicyKind::kStaticAllStateful);
  options.poisson_arrivals = true;
  const BedFactory factory = single_proxy(options);
  auto bed = factory(20.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(5.0));
  EXPECT_GT(bed->total_completed_calls(), 60u);
}

TEST(CallFlowTest, AuthenticatedScenarioCompletes) {
  ScenarioOptions options = scaled_options(PolicyKind::kStaticAllStateful);
  options.authenticate = true;
  options.stateful_mode = profile::HandlingMode::kDialogStatefulAuth;
  const BedFactory factory = single_proxy(options);
  auto bed = factory(10.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(5.0));
  EXPECT_GE(bed->total_completed_calls(), 40u);
  EXPECT_EQ(bed->proxies()[0]->stats().auth_failures, 0u);
  EXPECT_GT(bed->proxies()[0]->profiler().events(profile::CostBlock::kAuth),
            0.0);
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

TEST(RunnerTest, MeasurePointBelowSaturation) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateless));
  const PointResult point = measure_point(factory, 50.0);
  EXPECT_NEAR(point.offered_cps, 50.0, 1e-9);
  EXPECT_NEAR(point.throughput_cps, 50.0, 2.5);
  EXPECT_GT(point.goodput_ratio, 0.95);
  EXPECT_EQ(point.busy_500, 0u);
  ASSERT_EQ(point.proxy_utilization.size(), 1u);
  // Stateless node at ~123 cps capacity: 50 cps ~ 40% utilization.
  EXPECT_NEAR(point.proxy_utilization[0], 50.0 / 123.0, 0.05);
  EXPECT_GT(point.setup_ms_mean, 0.0);
  EXPECT_LT(point.setup_ms_mean, 50.0);
}

TEST(RunnerTest, UtilizationScalesLinearlyWithLoad) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateful));
  const PointResult p30 = measure_point(factory, 30.0);
  const PointResult p60 = measure_point(factory, 60.0);
  ASSERT_GT(p30.proxy_utilization[0], 0.0);
  EXPECT_NEAR(p60.proxy_utilization[0] / p30.proxy_utilization[0], 2.0, 0.15);
}

TEST(RunnerTest, OverloadedPointShowsRejections) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateful));
  // ~160 cps offered against a ~103 cps stateful node.
  const PointResult point = measure_point(factory, 160.0);
  EXPECT_LT(point.throughput_cps, 125.0);
  EXPECT_GT(point.busy_500, 0u);
  EXPECT_GT(point.proxy_rejected[0], 0u);
  EXPECT_GT(point.proxy_utilization[0], 0.97);
}

TEST(RunnerTest, SweepFindsStatefulSaturationNearCalibration) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateful));
  const SweepResult result = sweep(factory, 60.0, 140.0, 20.0);
  // T_SF at 1/100 scale is ~103.6 cps.
  EXPECT_NEAR(result.max_throughput_cps, 103.6, 8.0);
}

TEST(RunnerTest, StatelessSaturatesHigherThanStateful) {
  const double stateful = find_saturation(
      single_proxy(scaled_options(PolicyKind::kStaticAllStateful)), 60.0,
      160.0, 20.0);
  const double stateless = find_saturation(
      single_proxy(scaled_options(PolicyKind::kStaticAllStateless)), 60.0,
      160.0, 20.0);
  EXPECT_GT(stateless, stateful * 1.1);
  EXPECT_NEAR(stateless, 123.0, 10.0);
}

TEST(RunnerTest, EarlyStopDoesNotUnderestimate) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateful));
  const SweepResult full = sweep(factory, 60.0, 160.0, 20.0);
  const SweepResult stopped =
      sweep(factory, 60.0, 160.0, 20.0, MeasureOptions{}, true);
  EXPECT_NEAR(stopped.max_throughput_cps, full.max_throughput_cps, 2.0);
}

// ---------------------------------------------------------------------------
// Parallel runner
// ---------------------------------------------------------------------------

/// Every simulation-derived field must match bit-for-bit; only the host
/// wall-clock may differ between serial and parallel runs.
void expect_points_identical(const PointResult& a, const PointResult& b) {
  EXPECT_EQ(a.offered_cps, b.offered_cps);
  EXPECT_EQ(a.throughput_cps, b.throughput_cps);
  EXPECT_EQ(a.attempted_cps, b.attempted_cps);
  EXPECT_EQ(a.goodput_ratio, b.goodput_ratio);
  EXPECT_EQ(a.setup_ms_mean, b.setup_ms_mean);
  EXPECT_EQ(a.setup_ms_p50, b.setup_ms_p50);
  EXPECT_EQ(a.setup_ms_p90, b.setup_ms_p90);
  EXPECT_EQ(a.setup_ms_p99, b.setup_ms_p99);
  EXPECT_EQ(a.calls_failed, b.calls_failed);
  EXPECT_EQ(a.busy_500, b.busy_500);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.trying_received, b.trying_received);
  EXPECT_EQ(a.calls_established_uac, b.calls_established_uac);
  EXPECT_EQ(a.proxy_utilization, b.proxy_utilization);
  EXPECT_EQ(a.proxy_rejected, b.proxy_rejected);
  EXPECT_EQ(a.proxy_stateful, b.proxy_stateful);
  EXPECT_EQ(a.proxy_stateless, b.proxy_stateless);
}

TEST(ParallelRunnerTest, SweepMatchesSerialBitForBit) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateful));
  MeasureOptions options;
  options.warmup = SimTime::seconds(1.0);
  options.measure = SimTime::seconds(2.0);

  const SweepResult serial = sweep(factory, 40.0, 130.0, 15.0, options);
  const SweepResult parallel =
      run_sweep_parallel(factory, 40.0, 130.0, 15.0, options, 4);

  ASSERT_EQ(parallel.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    SCOPED_TRACE(i);
    expect_points_identical(serial.points[i], parallel.points[i]);
  }
  EXPECT_EQ(parallel.max_throughput_cps, serial.max_throughput_cps);
  EXPECT_EQ(parallel.offered_at_max, serial.offered_at_max);
}

TEST(ParallelRunnerTest, SingleThreadSweepAlsoMatches) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateless));
  MeasureOptions options;
  options.warmup = SimTime::seconds(1.0);
  options.measure = SimTime::seconds(2.0);
  const SweepResult serial = sweep(factory, 100.0, 140.0, 10.0, options);
  const SweepResult parallel =
      run_sweep_parallel(factory, 100.0, 140.0, 10.0, options, 1);
  ASSERT_EQ(parallel.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    SCOPED_TRACE(i);
    expect_points_identical(serial.points[i], parallel.points[i]);
  }
}

TEST(ParallelRunnerTest, FindSaturationParallelNearSerial) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateful));
  MeasureOptions options;
  options.warmup = SimTime::seconds(1.0);
  options.measure = SimTime::seconds(2.0);
  const double serial = find_saturation(factory, 60.0, 160.0, 10.0, options);
  const double parallel =
      find_saturation_parallel(factory, 60.0, 160.0, 10.0, options, 4);
  // Bisection probes a subset of the serial grid; both must land at the
  // same saturation plateau (~103.6 cps at this scale).
  EXPECT_NEAR(parallel, serial, 6.0);
  EXPECT_NEAR(parallel, 103.6, 8.0);
}

TEST(ParallelRunnerTest, RunPointsParallelKeepsJobOrder) {
  const BedFactory factory =
      single_proxy(scaled_options(PolicyKind::kStaticAllStateless));
  MeasureOptions options;
  options.warmup = SimTime::seconds(1.0);
  options.measure = SimTime::seconds(2.0);
  const std::vector<double> loads = {30.0, 60.0, 90.0};
  std::vector<std::function<PointResult()>> jobs;
  for (const double load : loads) {
    jobs.emplace_back(
        [&factory, &options, load] {
          return measure_point(factory, load, options);
        });
  }
  const std::vector<PointResult> results = run_points_parallel(jobs, 3);
  ASSERT_EQ(results.size(), loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(results[i].offered_cps, loads[i]);
    expect_points_identical(results[i],
                            measure_point(factory, loads[i], options));
  }
}

TEST(RunRecordTest, ConversionScalesRatesOnly) {
  PointResult point;
  point.offered_cps = 100.0;
  point.throughput_cps = 95.0;
  point.attempted_cps = 98.0;
  point.goodput_ratio = 0.95;
  point.setup_ms_mean = 12.5;
  point.retransmissions = 4;
  point.busy_500 = 1;
  point.proxy_utilization = {0.8};
  point.proxy_rejected = {1};
  point.wall_seconds = 0.5;

  const RunRecord record = to_run_record(point, 10.0, "series-a");
  EXPECT_EQ(record.label, "series-a");
  EXPECT_EQ(record.offered_cps, 1000.0);
  EXPECT_EQ(record.achieved_cps, 950.0);
  EXPECT_EQ(record.attempted_cps, 980.0);
  EXPECT_EQ(record.goodput_ratio, 0.95);    // ratio: scale-free
  EXPECT_EQ(record.setup_ms_mean, 12.5);    // time: scale-free
  EXPECT_EQ(record.retransmissions, 4u);
  EXPECT_EQ(record.busy_500, 1u);
  EXPECT_EQ(record.node_utilization, std::vector<double>{0.8});
  EXPECT_EQ(record.node_rejected, std::vector<std::uint64_t>{1});
  EXPECT_EQ(record.wall_seconds, 0.5);
}

// ---------------------------------------------------------------------------
// Scenario topology wiring
// ---------------------------------------------------------------------------

TEST(ScenarioTest, SeriesChainDeliversThroughAllProxies) {
  const BedFactory factory =
      series_chain(3, scaled_options(PolicyKind::kStaticChainFirstStateful));
  auto bed = factory(10.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(4.0));
  EXPECT_GE(bed->total_completed_calls(), 30u);
  ASSERT_EQ(bed->proxies().size(), 3u);
  // Every proxy saw the traffic.
  for (const auto& proxy : bed->proxies()) {
    EXPECT_GT(proxy->stats().requests_in, 0u);
  }
  // Only the first (stateful) proxy generated 100s.
  EXPECT_GT(bed->proxies()[0]->stats().generated_100, 0u);
  EXPECT_EQ(bed->proxies()[1]->stats().generated_100, 0u);
  EXPECT_EQ(bed->proxies()[2]->stats().generated_100, 0u);
}

TEST(ScenarioTest, InternalTrafficTerminatesAtFirstProxy) {
  const BedFactory factory = two_series_with_internal(
      0.5, scaled_options(PolicyKind::kStaticChainFirstStateful));
  auto bed = factory(20.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(4.0));
  ASSERT_EQ(bed->proxies().size(), 2u);
  // The second proxy only sees the external half.
  EXPECT_GT(bed->proxies()[0]->stats().requests_in,
            bed->proxies()[1]->stats().requests_in * 3 / 2);
  EXPECT_GE(bed->total_completed_calls(), 60u);
}

TEST(ScenarioTest, ParallelForkSplitsLoad) {
  const BedFactory factory =
      parallel_fork(scaled_options(PolicyKind::kStaticChainLastStateful));
  auto bed = factory(20.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(5.0));
  ASSERT_EQ(bed->proxies().size(), 3u);
  const auto& up = bed->proxies()[1]->stats();
  const auto& down = bed->proxies()[2]->stats();
  EXPECT_GT(up.requests_in, 0u);
  EXPECT_GT(down.requests_in, 0u);
  // 50/50 round-robin split.
  const double ratio = static_cast<double>(up.requests_in) /
                       static_cast<double>(down.requests_in);
  EXPECT_NEAR(ratio, 1.0, 0.2);
  EXPECT_GE(bed->total_completed_calls(), 70u);
}

TEST(ScenarioTest, ForkExitsAreStatefulInStandardConfig) {
  const BedFactory factory =
      parallel_fork(scaled_options(PolicyKind::kStaticChainLastStateful));
  auto bed = factory(10.0);
  bed->start_load();
  bed->sim().run_until(SimTime::seconds(3.0));
  EXPECT_EQ(bed->proxies()[0]->stats().forwarded_stateful, 0u);
  EXPECT_GT(bed->proxies()[1]->stats().forwarded_stateful, 0u);
  EXPECT_GT(bed->proxies()[2]->stats().forwarded_stateful, 0u);
}

}  // namespace
}  // namespace svk::workload
